//===- Abstractor.cpp - Neuron-merging network abstraction --------------------===//

#include "cegar/Abstractor.h"

#include "nn/Dense.h"
#include "nn/Relu.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <memory>

using namespace charon;

namespace {

PartDir flip(PartDir D) {
  return D == PartDir::Inc ? PartDir::Dec : PartDir::Inc;
}

// Fixed category order used everywhere a partition is enumerated.
constexpr std::array<std::pair<PartSign, PartDir>, 4> Categories = {{
    {PartSign::Pos, PartDir::Inc},
    {PartSign::Pos, PartDir::Dec},
    {PartSign::Neg, PartDir::Inc},
    {PartSign::Neg, PartDir::Dec},
}};

int catIndex(PartSign S, PartDir D) {
  return (S == PartSign::Pos ? 0 : 2) + (D == PartDir::Inc ? 0 : 1);
}

/// Affine views of an alternating Dense/ReLU stack: W[h], B[h] for the H
/// hidden layers plus W[H], B[H] for the output layer.
struct DenseStack {
  std::vector<const Matrix *> W;
  std::vector<const Vector *> B;
  size_t hidden() const { return W.size() - 1; }
};

bool denseStack(const Network &Net, DenseStack &S) {
  size_t N = Net.numLayers();
  if (N < 3 || N % 2 == 0)
    return false;
  for (size_t I = 0; I < N; ++I) {
    const Layer &L = Net.layer(I);
    if (I % 2 == 0) {
      if (L.kind() != LayerKind::Dense)
        return false;
      std::optional<AffineView> View = L.affineForm();
      if (!View)
        return false;
      S.W.push_back(View->W);
      S.B.push_back(View->B);
    } else if (!L.isRelu()) {
      return false;
    }
  }
  return true;
}

/// Competitor classes of K in increasing order; margin output j (j >= 1)
/// tracks N_{Classes[j-1]} - N_K.
std::vector<size_t> competitorClasses(size_t NumClasses, size_t K) {
  std::vector<size_t> Classes;
  for (size_t C = 0; C < NumClasses; ++C)
    if (C != K)
      Classes.push_back(C);
  return Classes;
}

/// Per-layer, per-neuron presence of each of the four parts, computed by
/// one backward pass from the margin outputs (which are all Inc). An edge
/// with weight w feeding a successor of direction d belongs to part
/// (Pos, d) when w > 0 and (Neg, flip(d)) when w < 0; zero edges are dead.
std::vector<std::vector<std::array<bool, 4>>>
classifyParts(const DenseStack &S, size_t K) {
  size_t H = S.hidden();
  std::vector<std::vector<std::array<bool, 4>>> Present(H);
  for (size_t L = 0; L < H; ++L)
    Present[L].assign(S.W[L]->rows(), {false, false, false, false});

  const Matrix &WOut = *S.W[H];
  std::vector<size_t> Classes = competitorClasses(WOut.rows(), K);
  for (size_t V = 0; V < S.W[H - 1]->rows(); ++V) {
    for (size_t C : Classes) {
      double W = WOut(C, V) - WOut(K, V);
      if (W > 0.0)
        Present[H - 1][V][catIndex(PartSign::Pos, PartDir::Inc)] = true;
      else if (W < 0.0)
        Present[H - 1][V][catIndex(PartSign::Neg, PartDir::Dec)] = true;
    }
  }

  for (size_t L = H - 1; L-- > 0;) {
    const Matrix &WNext = *S.W[L + 1];
    for (size_t VN = 0; VN < WNext.rows(); ++VN) {
      const std::array<bool, 4> &Succ = Present[L + 1][VN];
      bool HasInc = Succ[catIndex(PartSign::Pos, PartDir::Inc)] ||
                    Succ[catIndex(PartSign::Neg, PartDir::Inc)];
      bool HasDec = Succ[catIndex(PartSign::Pos, PartDir::Dec)] ||
                    Succ[catIndex(PartSign::Neg, PartDir::Dec)];
      if (!HasInc && !HasDec)
        continue;
      for (size_t V = 0; V < WNext.cols(); ++V) {
        double W = WNext(VN, V);
        if (W > 0.0) {
          if (HasInc)
            Present[L][V][catIndex(PartSign::Pos, PartDir::Inc)] = true;
          if (HasDec)
            Present[L][V][catIndex(PartSign::Pos, PartDir::Dec)] = true;
        } else if (W < 0.0) {
          if (HasInc)
            Present[L][V][catIndex(PartSign::Neg, PartDir::Dec)] = true;
          if (HasDec)
            Present[L][V][catIndex(PartSign::Neg, PartDir::Inc)] = true;
        }
      }
    }
  }
  return Present;
}

/// Members of each category in one layer, neuron indices ascending.
std::array<std::vector<size_t>, 4>
categoryMembers(const std::vector<std::array<bool, 4>> &LayerParts) {
  std::array<std::vector<size_t>, 4> Members;
  for (size_t V = 0; V < LayerParts.size(); ++V)
    for (int C = 0; C < 4; ++C)
      if (LayerParts[V][C])
        Members[C].push_back(V);
  return Members;
}

} // namespace

bool charon::canAbstract(const Network &Net) {
  DenseStack S;
  return denseStack(Net, S) && Net.outputSize() >= 2;
}

size_t charon::numHiddenLayers(const Network &Net) {
  DenseStack S;
  return denseStack(Net, S) ? S.hidden() : 0;
}

RefinementMap charon::finestPartition(const Network &Net, size_t K) {
  return initialPartition(Net, K, 1.0);
}

RefinementMap charon::initialPartition(const Network &Net, size_t K,
                                       double MergeRatio) {
  RefinementMap Map;
  Map.TargetClass = K;
  DenseStack S;
  if (!denseStack(Net, S) || Net.outputSize() < 2 || K >= Net.outputSize())
    return Map;

  std::vector<std::vector<std::array<bool, 4>>> Present = classifyParts(S, K);
  Map.Layers.resize(S.hidden());
  for (size_t L = 0; L < S.hidden(); ++L) {
    std::array<std::vector<size_t>, 4> Members = categoryMembers(Present[L]);
    size_t TotalParts = 0;
    size_t NonEmpty = 0;
    for (const std::vector<size_t> &M : Members) {
      TotalParts += M.size();
      NonEmpty += M.empty() ? 0 : 1;
    }
    if (TotalParts == 0) {
      // A layer whose every outgoing edge is dead cannot be represented;
      // signal "not abstractable" and let the driver fall back.
      Map.Layers.clear();
      return Map;
    }

    // Target group count for the layer, expressed against the original
    // width so MergeRatio=0.25 reads "about a quarter of the layer".
    size_t Width = S.W[L]->rows();
    size_t Target = TotalParts;
    if (MergeRatio < 1.0) {
      double Raw = MergeRatio * static_cast<double>(Width);
      long Rounded = std::lround(Raw);
      Target = Rounded < 1 ? 1 : static_cast<size_t>(Rounded);
      Target = std::max(Target, NonEmpty);
      Target = std::min(Target, TotalParts);
    }

    // One group per nonempty category, then grow the category whose groups
    // are currently the fullest until the layer target is met.
    std::array<size_t, 4> Buckets = {0, 0, 0, 0};
    size_t Assigned = 0;
    for (int C = 0; C < 4; ++C)
      if (!Members[C].empty()) {
        Buckets[C] = 1;
        ++Assigned;
      }
    while (Assigned < Target) {
      int Best = -1;
      double BestLoad = 0.0;
      for (int C = 0; C < 4; ++C) {
        if (Members[C].empty() || Buckets[C] >= Members[C].size())
          continue;
        double Load = static_cast<double>(Members[C].size()) /
                      static_cast<double>(Buckets[C]);
        if (Best < 0 || Load > BestLoad) {
          Best = C;
          BestLoad = Load;
        }
      }
      if (Best < 0)
        break;
      ++Buckets[Best];
      ++Assigned;
    }

    const Matrix &W = *S.W[L];
    const Vector &B = *S.B[L];
    for (int C = 0; C < 4; ++C) {
      std::vector<size_t> &Neurons = Members[C];
      if (Neurons.empty())
        continue;
      // Bucket similar rows together: a 1-D projection of (row, bias) is a
      // cheap similarity key, and contiguous runs of the sorted order keep
      // the min/max aggregation tight.
      std::vector<double> Key(W.rows(), 0.0);
      for (size_t V : Neurons) {
        double Sum = 0.0;
        const double *Row = W.row(V);
        for (size_t J = 0; J < W.cols(); ++J)
          Sum += Row[J];
        Key[V] = B[V] + 0.5 * Sum;
      }
      std::stable_sort(Neurons.begin(), Neurons.end(),
                       [&Key](size_t A, size_t Z) {
                         if (Key[A] != Key[Z])
                           return Key[A] < Key[Z];
                         return A < Z;
                       });
      // Cut the sorted order at the largest key gaps (ties broken toward
      // earlier positions). Identical rows — e.g. networks with duplicated
      // neurons, the redundancy CEGAR exploits best — have zero gaps and
      // are never separated while a positive gap remains, and in general
      // each group's internal key spread (which bounds how loose the
      // min/max aggregation gets) is minimized.
      size_t NumBuckets = Buckets[C];
      std::vector<size_t> Cuts;
      if (NumBuckets > 1) {
        std::vector<size_t> Pos(Neurons.size() - 1);
        for (size_t I = 0; I + 1 < Neurons.size(); ++I)
          Pos[I] = I + 1;
        std::stable_sort(Pos.begin(), Pos.end(),
                         [&Key, &Neurons](size_t A, size_t Z) {
                           double GapA =
                               Key[Neurons[A]] - Key[Neurons[A - 1]];
                           double GapZ =
                               Key[Neurons[Z]] - Key[Neurons[Z - 1]];
                           if (GapA != GapZ)
                             return GapA > GapZ;
                           return A < Z;
                         });
        Cuts.assign(Pos.begin(),
                    Pos.begin() + std::min(NumBuckets - 1, Pos.size()));
        std::sort(Cuts.begin(), Cuts.end());
      }
      Cuts.push_back(Neurons.size());
      size_t Lo = 0;
      for (size_t Hi : Cuts) {
        MergeGroup Group;
        Group.Sign = Categories[C].first;
        Group.Dir = Categories[C].second;
        Group.Members.assign(Neurons.begin() + Lo, Neurons.begin() + Hi);
        Map.Layers[L].Groups.push_back(std::move(Group));
        Lo = Hi;
      }
    }
  }
  return Map;
}

Network charon::buildAbstractNetwork(const Network &Net,
                                     const RefinementMap &Map,
                                     const Vector &RegionLower) {
  DenseStack S;
  bool Ok = denseStack(Net, S);
  (void)Ok;
  assert(Ok && !Map.Layers.empty() && Map.Layers.size() == S.hidden() &&
         "map does not match network");

  size_t K = Map.TargetClass;
  Network Abstract;

  // First hidden layer: parts keep the full original row; merged rows
  // aggregate per input coordinate, and biases are re-expressed against the
  // region's lower corner so aggregation stays sound for x >= RegionLower.
  {
    const Matrix &W = *S.W[0];
    const Vector &B = *S.B[0];
    const LayerPartition &L = Map.Layers[0];
    Matrix WA(L.Groups.size(), W.cols());
    Vector BA(L.Groups.size());
    for (size_t G = 0; G < L.Groups.size(); ++G) {
      const MergeGroup &Group = L.Groups[G];
      bool Inc = Group.Dir == PartDir::Inc;
      if (Group.Members.size() == 1) {
        size_t V = Group.Members[0];
        for (size_t J = 0; J < W.cols(); ++J)
          WA(G, J) = W(V, J);
        BA[G] = B[V];
        continue;
      }
      for (size_t J = 0; J < W.cols(); ++J) {
        double Agg = W(Group.Members[0], J);
        for (size_t I = 1; I < Group.Members.size(); ++I) {
          double X = W(Group.Members[I], J);
          Agg = Inc ? std::max(Agg, X) : std::min(Agg, X);
        }
        WA(G, J) = Agg;
      }
      double AggB = 0.0;
      for (size_t I = 0; I < Group.Members.size(); ++I) {
        size_t V = Group.Members[I];
        double Shifted = B[V];
        for (size_t J = 0; J < W.cols(); ++J)
          Shifted += W(V, J) * RegionLower[J];
        AggB = I == 0 ? Shifted
                      : (Inc ? std::max(AggB, Shifted)
                             : std::min(AggB, Shifted));
      }
      for (size_t J = 0; J < W.cols(); ++J)
        AggB -= WA(G, J) * RegionLower[J];
      BA[G] = AggB;
    }
    Abstract.addLayer(std::make_unique<DenseLayer>(std::move(WA),
                                                   std::move(BA)));
    Abstract.addLayer(std::make_unique<ReluLayer>(L.Groups.size()));
  }

  // Middle hidden layers: the carried weight from previous group P into a
  // part q is the sign-filtered sum of P's members' edges into q's neuron;
  // the merged weight aggregates that over q in the group (max for Inc
  // groups, min for Dec). A category mismatch carries nothing.
  for (size_t H = 1; H < S.hidden(); ++H) {
    const Matrix &W = *S.W[H];
    const Vector &B = *S.B[H];
    const LayerPartition &Prev = Map.Layers[H - 1];
    const LayerPartition &Cur = Map.Layers[H];
    Matrix WA(Cur.Groups.size(), Prev.Groups.size());
    Vector BA(Cur.Groups.size());
    for (size_t G = 0; G < Cur.Groups.size(); ++G) {
      const MergeGroup &Group = Cur.Groups[G];
      bool Inc = Group.Dir == PartDir::Inc;
      for (size_t P = 0; P < Prev.Groups.size(); ++P) {
        const MergeGroup &Src = Prev.Groups[P];
        bool Carries = Src.Sign == PartSign::Pos
                           ? Src.Dir == Group.Dir
                           : Src.Dir == flip(Group.Dir);
        if (!Carries)
          continue;
        bool WantPos = Src.Sign == PartSign::Pos;
        double Agg = 0.0;
        for (size_t I = 0; I < Group.Members.size(); ++I) {
          size_t Q = Group.Members[I];
          double Sum = 0.0;
          for (size_t VP : Src.Members) {
            double X = W(Q, VP);
            if ((WantPos && X > 0.0) || (!WantPos && X < 0.0))
              Sum += X;
          }
          Agg = I == 0 ? Sum
                       : (Inc ? std::max(Agg, Sum) : std::min(Agg, Sum));
        }
        WA(G, P) = Agg;
      }
      double AggB = 0.0;
      for (size_t I = 0; I < Group.Members.size(); ++I) {
        double X = B[Group.Members[I]];
        AggB = I == 0 ? X : (Inc ? std::max(AggB, X) : std::min(AggB, X));
      }
      BA[G] = AggB;
    }
    Abstract.addLayer(std::make_unique<DenseLayer>(std::move(WA),
                                                   std::move(BA)));
    Abstract.addLayer(std::make_unique<ReluLayer>(Cur.Groups.size()));
  }

  // Output layer of the margin network: row 0 is the constant-zero target
  // class; row j upper-bounds N_{c_j} - N_K. Outputs are never merged, so
  // carried weights sum (the singleton-group case of the rule above).
  {
    const Matrix &W = *S.W[S.hidden()];
    const Vector &B = *S.B[S.hidden()];
    const LayerPartition &Prev = Map.Layers[S.hidden() - 1];
    std::vector<size_t> Classes = competitorClasses(W.rows(), K);
    Matrix WA(W.rows(), Prev.Groups.size());
    Vector BA(W.rows());
    for (size_t J = 0; J < Classes.size(); ++J) {
      size_t C = Classes[J];
      BA[J + 1] = B[C] - B[K];
      for (size_t P = 0; P < Prev.Groups.size(); ++P) {
        const MergeGroup &Src = Prev.Groups[P];
        bool Carries = Src.Sign == PartSign::Pos
                           ? Src.Dir == PartDir::Inc
                           : Src.Dir == PartDir::Dec;
        if (!Carries)
          continue;
        bool WantPos = Src.Sign == PartSign::Pos;
        double Sum = 0.0;
        for (size_t VP : Src.Members) {
          double X = W(C, VP) - W(K, VP);
          if ((WantPos && X > 0.0) || (!WantPos && X < 0.0))
            Sum += X;
        }
        WA(J + 1, P) = Sum;
      }
    }
    Abstract.addLayer(std::make_unique<DenseLayer>(std::move(WA),
                                                   std::move(BA)));
  }

  Abstract.setName(Net.name().empty() ? "cegar-abstract"
                                      : Net.name() + "+cegar");
  return Abstract;
}

int charon::refinePartition(RefinementMap &Map, const Network &Net,
                            const Network &Abstract,
                            const Vector &SpuriousCex, int MaxSplits) {
  if (MaxSplits <= 0 || Map.Layers.empty())
    return 0;
  std::vector<Vector> OrigActs = Net.evaluateWithActivations(SpuriousCex);
  std::vector<Vector> AbsActs = Abstract.evaluateWithActivations(SpuriousCex);

  struct Candidate {
    double Gap;
    size_t Size;
    size_t Layer;
    size_t Group;
  };
  std::vector<Candidate> Candidates;
  for (size_t L = 0; L < Map.Layers.size(); ++L) {
    // Post-ReLU activations of hidden layer L sit after layer pair
    // (Dense, ReLU) number L in both networks.
    const Vector &Orig = OrigActs[2 * L + 2];
    const Vector &Abs = AbsActs[2 * L + 2];
    for (size_t G = 0; G < Map.Layers[L].Groups.size(); ++G) {
      const MergeGroup &Group = Map.Layers[L].Groups[G];
      if (Group.Members.size() < 2)
        continue;
      bool Inc = Group.Dir == PartDir::Inc;
      double Ref = Orig[Group.Members[0]];
      for (size_t I = 1; I < Group.Members.size(); ++I) {
        double X = Orig[Group.Members[I]];
        Ref = Inc ? std::max(Ref, X) : std::min(Ref, X);
      }
      double Gap = Inc ? Abs[G] - Ref : Ref - Abs[G];
      Candidates.push_back({Gap, Group.Members.size(), L, G});
    }
  }
  if (Candidates.empty())
    return 0;

  // Largest abstraction error first; break ties toward bigger groups so a
  // zero-gap round (the slack hides in the output recombination) still
  // makes progress where it is cheapest to recover precision.
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Gap != B.Gap)
                return A.Gap > B.Gap;
              if (A.Size != B.Size)
                return A.Size > B.Size;
              if (A.Layer != B.Layer)
                return A.Layer < B.Layer;
              return A.Group < B.Group;
            });

  int Splits = 0;
  for (const Candidate &C : Candidates) {
    if (Splits >= MaxSplits)
      break;
    MergeGroup &Group = Map.Layers[C.Layer].Groups[C.Group];
    const Vector &Orig = OrigActs[2 * C.Layer + 2];
    bool Inc = Group.Dir == PartDir::Inc;
    // Peel the member farthest from the group's aggregate: the minimum
    // activation for Inc groups (it drags the max-aggregated weights), the
    // maximum for Dec. Ties resolve to the smallest neuron index.
    size_t Peel = 0;
    for (size_t I = 1; I < Group.Members.size(); ++I) {
      double X = Orig[Group.Members[I]];
      double Best = Orig[Group.Members[Peel]];
      bool Better = Inc ? X < Best : X > Best;
      if (Better || (X == Best && Group.Members[I] < Group.Members[Peel]))
        Peel = I;
    }
    MergeGroup Single;
    Single.Sign = Group.Sign;
    Single.Dir = Group.Dir;
    Single.Members.push_back(Group.Members[Peel]);
    Group.Members.erase(Group.Members.begin() + Peel);
    Map.Layers[C.Layer].Groups.push_back(std::move(Single));
    ++Splits;
  }
  return Splits;
}
