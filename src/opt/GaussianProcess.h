//===- GaussianProcess.h - GP regression for Bayesian optimization -*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gaussian-process regression with a squared-exponential kernel — the
/// surrogate model the paper adopts for Bayesian optimization of the
/// verification policy (Sec. 4.2, "we adopt a Gaussian process as our
/// surrogate model"). Stands in for the BayesOpt library.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_OPT_GAUSSIANPROCESS_H
#define CHARON_OPT_GAUSSIANPROCESS_H

#include "linalg/Cholesky.h"
#include "linalg/Vector.h"

#include <memory>
#include <vector>

namespace charon {

/// GP hyperparameters.
struct GpConfig {
  double LengthScale = 1.0;   ///< kernel length scale (isotropic)
  double SignalVariance = 1.0; ///< kernel amplitude sigma_f^2
  double NoiseVariance = 1e-4; ///< observation noise sigma_n^2
};

/// Posterior mean and variance at a query point.
struct GpPrediction {
  double Mean = 0.0;
  double Variance = 0.0;
};

/// Gaussian-process regressor with squared-exponential kernel
/// k(a, b) = sigma_f^2 exp(-||a-b||^2 / (2 l^2)) + sigma_n^2 [a == b].
class GaussianProcess {
public:
  explicit GaussianProcess(GpConfig Config = GpConfig());

  /// Fits the posterior to observations (X[i], Y[i]). Increases jitter
  /// automatically until the kernel matrix factorizes. Returns false if
  /// even heavy jitter fails (pathological duplicate inputs).
  bool fit(std::vector<Vector> X, Vector Y);

  /// Posterior at \p Query; requires a successful fit.
  GpPrediction predict(const Vector &Query) const;

  size_t numObservations() const { return Xs.size(); }

  /// Kernel value between two points (exposed for tests).
  double kernel(const Vector &A, const Vector &B) const;

private:
  GpConfig Config;
  std::vector<Vector> Xs;
  Vector Alpha;                     ///< K^-1 y
  std::unique_ptr<Cholesky> Factor; ///< Cholesky of K (with jitter)
};

} // namespace charon

#endif // CHARON_OPT_GAUSSIANPROCESS_H
