file(REMOVE_RECURSE
  "CMakeFiles/complete_fallback_tests.dir/core/CompleteFallbackTests.cpp.o"
  "CMakeFiles/complete_fallback_tests.dir/core/CompleteFallbackTests.cpp.o.d"
  "complete_fallback_tests"
  "complete_fallback_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complete_fallback_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
