//===- OnnxProto.h - Minimal ONNX protobuf wire parser ----------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained reader for the subset of the ONNX protobuf schema that
/// the importer needs: ModelProto -> GraphProto -> {NodeProto, TensorProto,
/// ValueInfoProto}. The protobuf wire format is decoded by hand (varints,
/// length-delimited submessages, 32/64-bit scalars) so the project takes no
/// dependency on protobuf itself. Unknown fields are skipped by wire type;
/// structurally malformed input (truncated varints, lengths past the end,
/// deprecated group wire types) produces a diagnostic, never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_ONNX_ONNXPROTO_H
#define CHARON_ONNX_ONNXPROTO_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace charon {
namespace onnx {

/// A parsed TensorProto: initializer weights, or an attribute tensor.
/// Element payloads (FLOAT, DOUBLE, INT64 via raw_data or the typed
/// repeated fields) are widened to double.
struct TensorData {
  std::string Name;
  std::vector<int64_t> Dims;
  std::vector<double> Values;

  int64_t elementCount() const {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    return N;
  }
};

/// A parsed NodeProto attribute. Only the payload slots the importer reads
/// are materialized; \c HasF / \c HasI record presence for optional scalars.
struct Attribute {
  std::string Name;
  double F = 0.0;
  int64_t I = 0;
  bool HasF = false;
  bool HasI = false;
  std::string S;
  std::optional<TensorData> T;
  std::vector<double> Floats;
  std::vector<int64_t> Ints;
};

/// A parsed NodeProto.
struct Node {
  std::string OpType;
  std::string Name;
  std::vector<std::string> Inputs;
  std::vector<std::string> Outputs;
  std::vector<Attribute> Attrs;

  const Attribute *attr(const std::string &AttrName) const {
    for (const Attribute &A : Attrs)
      if (A.Name == AttrName)
        return &A;
    return nullptr;
  }
};

/// A parsed ValueInfoProto (graph input/output declaration). Dims are the
/// static dimension values; a symbolic (named) dimension parses as 0 and is
/// treated as "batch 1" by the importer when leading.
struct ValueInfo {
  std::string Name;
  std::vector<int64_t> Dims;
};

/// A parsed GraphProto.
struct Graph {
  std::string Name;
  std::vector<Node> Nodes;
  std::vector<TensorData> Initializers;
  std::vector<ValueInfo> Inputs;
  std::vector<ValueInfo> Outputs;
};

/// A parsed ModelProto (only the graph is retained).
struct Model {
  int64_t IrVersion = 0;
  Graph G;
};

/// Parses serialized ModelProto bytes. On failure returns nullopt and sets
/// \p Error to a one-line diagnostic.
std::optional<Model> parseModel(const unsigned char *Data, size_t Len,
                                std::string &Error);

} // namespace onnx
} // namespace charon

#endif // CHARON_ONNX_ONNXPROTO_H
