//===- acas_export.cpp - Export the ACAS suite to .net/.prop files ------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Materializes the synthetic ACAS-like benchmark (the policy-training suite
// of Sec. 6) as serialized network and property files, so file-driven tools
// like charon_cli can run it without linking the data library. Used by the
// trace-smoke leg of scripts/check.sh.
//
//   acas_export <out-dir> [--count N] [--seed S] [--cache DIR]
//
// Writes <out-dir>/acas.net and <out-dir>/acas-<i>.prop for i in [0, N).
//
//===----------------------------------------------------------------------===//

#include "core/PropertyIo.h"
#include "data/Benchmarks.h"
#include "nn/Io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

using namespace charon;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <out-dir> [--count N] [--seed S] [--cache DIR]\n",
                 Argv[0]);
    return 2;
  }
  std::string OutDir = Argv[1];
  int Count = 4;
  uint64_t Seed = 321;
  std::string CacheDir = OutDir;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--count") && I + 1 < Argc)
      Count = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc)
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--cache") && I + 1 < Argc)
      CacheDir = Argv[++I];
    else {
      std::fprintf(stderr, "unknown option %s\n", Argv[I]);
      return 2;
    }
  }

  std::error_code Ec;
  std::filesystem::create_directories(OutDir, Ec);

  BenchmarkSuite Suite = makeAcasSuite(Count, Seed, CacheDir);
  std::string NetPath = OutDir + "/acas.net";
  if (!saveNetworkFile(Suite.Net, NetPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", NetPath.c_str());
    return 1;
  }
  std::printf("%s\n", NetPath.c_str());
  for (size_t I = 0; I < Suite.Properties.size(); ++I) {
    std::string PropPath = OutDir + "/acas-" + std::to_string(I) + ".prop";
    if (!savePropertyFile(Suite.Properties[I], PropPath)) {
      std::fprintf(stderr, "error: cannot write %s\n", PropPath.c_str());
      return 1;
    }
    std::printf("%s\n", PropPath.c_str());
  }
  return 0;
}
