# Empty dependencies file for bench_fig14_complete.
# This may be replaced when dependencies are built.
