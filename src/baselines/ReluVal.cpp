//===- ReluVal.cpp - ReluVal baseline (symbolic intervals) --------------------===//

#include "baselines/ReluVal.h"

#include "abstract/SymbolicIntervalElement.h"
#include "support/Timer.h"

#include <limits>
#include <vector>

using namespace charon;

namespace {

/// One symbolic-interval pass over \p Region. Returns the proof margin and,
/// via \p SplitDim, the input dimension with the largest smear.
double analyzeRegion(const Network &Net, const Box &Region, size_t K,
                     size_t &SplitDim) {
  SymbolicIntervalElement Elem(Region);
  propagate(Net, Elem);

  double Margin = std::numeric_limits<double>::infinity();
  for (size_t J = 0, E = Net.outputSize(); J < E; ++J) {
    if (J == K)
      continue;
    Margin = std::min(Margin, Elem.lowerBoundDiff(K, J));
  }

  SplitDim = 0;
  double BestSmear = -1.0;
  for (size_t D = 0, E = Region.dim(); D < E; ++D) {
    if (Region.width(D) == 0.0)
      continue;
    double S = Elem.smear(D);
    if (S > BestSmear) {
      BestSmear = S;
      SplitDim = D;
    }
  }
  return Margin;
}

} // namespace

ReluValResult charon::reluvalVerify(const Network &Net,
                                    const RobustnessProperty &Prop,
                                    const ReluValConfig &Config) {
  Deadline Budget(Config.TimeLimitSeconds);
  Stopwatch Watch;
  ReluValResult Result;

  std::vector<std::pair<Box, int>> Work;
  Work.emplace_back(Prop.Region, 0);

  while (!Work.empty()) {
    if (Budget.expired()) {
      Result.Result = Outcome::Timeout;
      Result.Seconds = Watch.seconds();
      return Result;
    }
    auto [Region, Depth] = std::move(Work.back());
    Work.pop_back();

    // Concrete probe: ReluVal notices violations only when a concretely
    // evaluated point breaks the property.
    Vector Center = Region.center();
    if (Net.objective(Center, Prop.TargetClass) <= 0.0) {
      Result.Result = Outcome::Falsified;
      Result.Counterexample = std::move(Center);
      Result.Seconds = Watch.seconds();
      return Result;
    }

    size_t SplitDim = 0;
    ++Result.AnalyzeCalls;
    double Margin = analyzeRegion(Net, Region, Prop.TargetClass, SplitDim);
    if (Margin > 0.0)
      continue; // Subregion verified.

    if (Depth + 1 > Config.MaxDepth) {
      Result.Result = Outcome::Timeout;
      Result.Seconds = Watch.seconds();
      return Result;
    }
    ++Result.Splits;
    double Mid =
        0.5 * (Region.lower()[SplitDim] + Region.upper()[SplitDim]);
    auto [Left, Right] = Region.split(SplitDim, Mid);
    Work.emplace_back(std::move(Left), Depth + 1);
    Work.emplace_back(std::move(Right), Depth + 1);
  }

  Result.Result = Outcome::Verified;
  Result.Seconds = Watch.seconds();
  return Result;
}
