//===- LpTests.cpp - Tests for the simplex LP solver --------------------------===//

#include "lp/Simplex.h"

#include "linalg/Box.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace charon;

TEST(SimplexTest, UnconstrainedBoxMaximum) {
  // max x + 2y over [0,1] x [0,2] is at the corner (1, 2).
  LpProblem Lp;
  Lp.addVariable(0.0, 1.0);
  Lp.addVariable(0.0, 2.0);
  LpResult R = Lp.maximize(Vector{1.0, 2.0});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Value, 5.0, 1e-8);
  EXPECT_NEAR(R.X[0], 1.0, 1e-8);
  EXPECT_NEAR(R.X[1], 2.0, 1e-8);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with value 36 (textbook example).
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 100.0);
  int Y = Lp.addVariable(0.0, 100.0);
  Lp.addLeqConstraint({{X, 1.0}}, 4.0);
  Lp.addLeqConstraint({{Y, 2.0}}, 12.0);
  Lp.addLeqConstraint({{X, 3.0}, {Y, 2.0}}, 18.0);
  LpResult R = Lp.maximize(Vector{3.0, 5.0});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Value, 36.0, 1e-7);
  EXPECT_NEAR(R.X[0], 2.0, 1e-7);
  EXPECT_NEAR(R.X[1], 6.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= -1 with x >= 0 is infeasible.
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 10.0);
  Lp.addLeqConstraint({{X, 1.0}}, -1.0);
  LpResult R = Lp.maximize(Vector{1.0});
  EXPECT_EQ(R.Status, LpStatus::Infeasible);
}

TEST(SimplexTest, ContradictoryConstraintsInfeasible) {
  LpProblem Lp;
  int X = Lp.addVariable(-10.0, 10.0);
  Lp.addLeqConstraint({{X, 1.0}}, 2.0);   // x <= 2
  Lp.addLeqConstraint({{X, -1.0}}, -5.0); // x >= 5
  LpResult R = Lp.maximize(Vector{1.0});
  EXPECT_EQ(R.Status, LpStatus::Infeasible);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // max -x over x in [-5, 3]: optimum at x = -5.
  LpProblem Lp;
  Lp.addVariable(-5.0, 3.0);
  LpResult R = Lp.maximize(Vector{-1.0});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[0], -5.0, 1e-8);
  EXPECT_NEAR(R.Value, 5.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + y st x + y = 3, x in [0,2], y in [0,2].
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 2.0);
  int Y = Lp.addVariable(0.0, 2.0);
  Lp.addEqConstraint({{X, 1.0}, {Y, 1.0}}, 3.0);
  LpResult R = Lp.maximize(Vector{1.0, 1.0});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Value, 3.0, 1e-7);
  EXPECT_NEAR(R.X[0] + R.X[1], 3.0, 1e-7);
}

TEST(SimplexTest, EqualityInfeasibleOutsideBounds) {
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 1.0);
  Lp.addEqConstraint({{X, 1.0}}, 5.0);
  LpResult R = Lp.maximize(Vector{1.0});
  EXPECT_EQ(R.Status, LpStatus::Infeasible);
}

TEST(SimplexTest, DegenerateTies) {
  // Multiple constraints active at the optimum (degenerate vertex).
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 10.0);
  int Y = Lp.addVariable(0.0, 10.0);
  Lp.addLeqConstraint({{X, 1.0}, {Y, 1.0}}, 2.0);
  Lp.addLeqConstraint({{X, 1.0}}, 1.0);
  Lp.addLeqConstraint({{Y, 1.0}}, 1.0);
  LpResult R = Lp.maximize(Vector{1.0, 1.0});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Value, 2.0, 1e-7);
}

TEST(SimplexTest, SolutionSatisfiesAllConstraints) {
  // Random LPs: the reported optimum must be feasible.
  Rng R(17);
  for (int Trial = 0; Trial < 20; ++Trial) {
    LpProblem Lp;
    int N = 4;
    for (int I = 0; I < N; ++I)
      Lp.addVariable(-2.0, 2.0);
    std::vector<std::vector<std::pair<int, double>>> Rows;
    std::vector<double> Rhs;
    for (int C = 0; C < 5; ++C) {
      std::vector<std::pair<int, double>> Terms;
      for (int I = 0; I < N; ++I)
        Terms.emplace_back(I, R.gaussian());
      double B = R.uniform(0.5, 3.0);
      Lp.addLeqConstraint(Terms, B);
      Rows.push_back(std::move(Terms));
      Rhs.push_back(B);
    }
    Vector Obj(N);
    for (int I = 0; I < N; ++I)
      Obj[I] = R.gaussian();
    LpResult Res = Lp.maximize(Obj);
    // 0 is feasible for all rows (rhs > 0), so the LP must be solvable.
    ASSERT_EQ(Res.Status, LpStatus::Optimal) << "trial " << Trial;
    for (size_t C = 0; C < Rows.size(); ++C) {
      double Lhs = 0.0;
      for (const auto &[V, Coef] : Rows[C])
        Lhs += Coef * Res.X[V];
      EXPECT_LE(Lhs, Rhs[C] + 1e-6) << "trial " << Trial;
    }
    for (int I = 0; I < N; ++I) {
      EXPECT_GE(Res.X[I], -2.0 - 1e-8);
      EXPECT_LE(Res.X[I], 2.0 + 1e-8);
    }
  }
}

TEST(SimplexTest, OptimumBeatsRandomFeasiblePoints) {
  // The reported optimum must dominate sampled feasible points.
  Rng R(19);
  LpProblem Lp;
  for (int I = 0; I < 3; ++I)
    Lp.addVariable(-1.0, 1.0);
  Lp.addLeqConstraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, 1.5);
  Lp.addLeqConstraint({{0, 1.0}, {1, -1.0}}, 0.5);
  Vector Obj{1.0, 2.0, -0.5};
  LpResult Res = Lp.maximize(Obj);
  ASSERT_EQ(Res.Status, LpStatus::Optimal);
  Box B = Box::uniform(3, -1.0, 1.0);
  for (int S = 0; S < 1000; ++S) {
    Vector X = B.sample(R);
    if (X[0] + X[1] + X[2] > 1.5 || X[0] - X[1] > 0.5)
      continue;
    EXPECT_GE(Res.Value, dot(Obj, X) - 1e-7);
  }
}

TEST(SimplexTest, FixedVariable) {
  // Zero-width bounds pin a variable.
  LpProblem Lp;
  Lp.addVariable(1.5, 1.5);
  Lp.addVariable(0.0, 1.0);
  LpResult R = Lp.maximize(Vector{1.0, 1.0});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[0], 1.5, 1e-8);
  EXPECT_NEAR(R.Value, 2.5, 1e-8);
}
