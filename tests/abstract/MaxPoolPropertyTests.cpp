//===- MaxPoolPropertyTests.cpp - Max-pool transformer invariants --------------===//
//
// Parameterized soundness sweep for the max-pool abstract transformers —
// the transformer with the most case analysis (dominance detection vs
// interval fallback in the zonotope domain).
//
//===----------------------------------------------------------------------===//

#include "abstract/Analyzer.h"
#include "nn/MaxPool2D.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace charon;

namespace {

struct PoolCase {
  const char *Name;
  TensorShape In;
  int PoolH, PoolW, Stride;
};

class MaxPoolSweepTest
    : public ::testing::TestWithParam<std::tuple<PoolCase, DomainSpec>> {};

} // namespace

TEST_P(MaxPoolSweepTest, SoundUnderSampling) {
  const auto &[Case, Spec] = GetParam();
  MaxPool2DLayer Pool(Case.In, Case.PoolH, Case.PoolW, Case.Stride);

  Rng R(91);
  for (int Trial = 0; Trial < 4; ++Trial) {
    // Random box input, pushed through a random affine map first so the
    // abstract element carries correlations into the pooling layer.
    Box Region = Box::uniform(Case.In.size(), -0.5, 0.5);
    Matrix W(Case.In.size(), Case.In.size());
    for (size_t I = 0; I < W.rows(); ++I)
      for (size_t J = 0; J < W.cols(); ++J)
        W(I, J) = R.gaussian(0.0, 0.3);
    Vector B(Case.In.size());
    for (size_t I = 0; I < B.size(); ++I)
      B[I] = R.gaussian(0.0, 0.2);

    auto Elem = makeElement(Region, Spec);
    Elem->applyAffine(W, B);
    Elem->applyMaxPool(*Pool.poolSpec());

    for (int S = 0; S < 200; ++S) {
      Vector X = Region.sample(R);
      Vector Pre = matVec(W, X);
      Pre += B;
      Vector Y = Pool.forward(Pre);
      for (size_t O = 0; O < Y.size(); ++O) {
        EXPECT_GE(Y[O], Elem->lowerBound(O) - 1e-7)
            << Case.Name << " " << toString(Spec);
        EXPECT_LE(Y[O], Elem->upperBound(O) + 1e-7)
            << Case.Name << " " << toString(Spec);
      }
    }
  }
}

TEST_P(MaxPoolSweepTest, OutputLowerBoundsAreNonTrivial) {
  // max >= each input, so the abstract output's upper bound must be at
  // least every input's lower bound (basic sanity of the window logic).
  const auto &[Case, Spec] = GetParam();
  MaxPool2DLayer Pool(Case.In, Case.PoolH, Case.PoolW, Case.Stride);
  Box Region = Box::uniform(Case.In.size(), 0.0, 1.0);
  auto Pre = makeElement(Region, Spec);
  auto Elem = Pre->clone();
  Elem->applyMaxPool(*Pool.poolSpec());
  const PoolSpec *S = Pool.poolSpec();
  for (size_t O = 0; O < S->PoolIndices.size(); ++O)
    for (int In : S->PoolIndices[O])
      EXPECT_GE(Elem->upperBound(O), Pre->lowerBound(In) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PoolsAndDomains, MaxPoolSweepTest,
    ::testing::Combine(
        ::testing::Values(PoolCase{"p2x2s2", TensorShape{1, 4, 4}, 2, 2, 2},
                          PoolCase{"p2x2s2c2", TensorShape{2, 4, 4}, 2, 2, 2},
                          PoolCase{"p3x3s3", TensorShape{1, 6, 6}, 3, 3, 3},
                          PoolCase{"p2x2s1", TensorShape{1, 3, 3}, 2, 2, 1}),
        ::testing::Values(DomainSpec{BaseDomainKind::Interval, 1},
                          DomainSpec{BaseDomainKind::Zonotope, 1},
                          DomainSpec{BaseDomainKind::Zonotope, 2})),
    [](const ::testing::TestParamInfo<std::tuple<PoolCase, DomainSpec>>
           &Info) {
      std::string Name = std::get<0>(Info.param).Name;
      Name += "_" + toString(std::get<1>(Info.param));
      for (char &C : Name)
        if (C == '^')
          C = '_';
      return Name;
    });
