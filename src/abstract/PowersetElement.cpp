//===- PowersetElement.cpp - Bounded powerset abstract domain ----------------===//

#include "abstract/PowersetElement.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace charon;

PowersetElement::PowersetElement(std::unique_ptr<AbstractElement> Initial,
                                 int MaxDisjuncts)
    : Budget(MaxDisjuncts) {
  assert(Initial && "null initial element");
  assert(MaxDisjuncts >= 1 && "powerset needs at least one disjunct");
  Base = Initial->clone();
  Elems.push_back(std::move(Initial));
}

PowersetElement::PowersetElement(
    std::vector<std::unique_ptr<AbstractElement>> Elements, int MaxDisjuncts,
    std::unique_ptr<AbstractElement> Baseline)
    : Elems(std::move(Elements)), Budget(MaxDisjuncts),
      Base(std::move(Baseline)) {
  assert(!Elems.empty() && "powerset must be nonempty");
}

std::unique_ptr<AbstractElement> PowersetElement::clone() const {
  std::vector<std::unique_ptr<AbstractElement>> Copy;
  Copy.reserve(Elems.size());
  for (const auto &E : Elems)
    Copy.push_back(E->clone());
  return std::make_unique<PowersetElement>(std::move(Copy), Budget,
                                           Base ? Base->clone() : nullptr);
}

size_t PowersetElement::dim() const { return Elems.front()->dim(); }

void PowersetElement::applyAffine(const Matrix &W, const Vector &B) {
  for (auto &E : Elems)
    E->applyAffine(W, B);
  if (Base)
    Base->applyAffine(W, B);
}

void PowersetElement::applyActivation(ActivationKind K, size_t Begin,
                                      size_t End) {
  // Case splits only help where the activation has a kink: ReLU crossing
  // neurons. The smooth kinds are relaxed in place by every disjunct — they
  // contribute relaxation slack, never split candidates.
  if (K == ActivationKind::Relu) {
    // Greedily pick the crossing neuron with the widest straddling interval
    // (over the union) and split every disjunct on it, while both halves of
    // every disjunct still fit in the budget. Each neuron is split at most
    // once per ReLU application (the zonotope halfspace meet is approximate,
    // so a split dimension can keep straddling zero slightly).
    std::vector<bool> AlreadySplit(dim(), false);
    for (;;) {
      if (static_cast<int>(Elems.size()) * 2 > Budget)
        break;

      size_t BestDim = End;
      double BestScore = 0.0;
      for (size_t I = Begin; I < End; ++I) {
        if (AlreadySplit[I])
          continue;
        double Lo = lowerBound(I);
        double Hi = upperBound(I);
        if (Lo >= 0.0 || Hi <= 0.0)
          continue; // Not a crossing neuron.
        // Score by the ReLU approximation error the neuron would introduce:
        // proportional to |Lo| * Hi / (Hi - Lo).
        double Score = -Lo * Hi / (Hi - Lo);
        if (Score > BestScore) {
          BestScore = Score;
          BestDim = I;
        }
      }
      if (BestDim == End)
        break; // No crossing neurons left.
      AlreadySplit[BestDim] = true;

      std::vector<std::unique_ptr<AbstractElement>> Split;
      Split.reserve(Elems.size() * 2);
      for (auto &E : Elems) {
        auto Neg = E->meetHalfspaceAtZero(BestDim, /*NonNegative=*/false);
        auto Pos = E->meetHalfspaceAtZero(BestDim, /*NonNegative=*/true);
        // Both sides empty cannot happen for a nonempty disjunct; if numeric
        // tightening ever claims it, keep the undivided element to stay
        // sound.
        if (!Neg && !Pos) {
          Split.push_back(std::move(E));
          continue;
        }
        if (Neg)
          Split.push_back(std::move(Neg));
        if (Pos)
          Split.push_back(std::move(Pos));
      }
      assert(!Split.empty() && "all disjuncts vanished during split");
      Elems = std::move(Split);
    }
  }

  for (auto &E : Elems)
    E->applyActivation(K, Begin, End);
  if (Base)
    Base->applyActivation(K, Begin, End);
}

void PowersetElement::applyMaxPool(const PoolSpec &Spec) {
  for (auto &E : Elems)
    E->applyMaxPool(Spec);
  if (Base)
    Base->applyMaxPool(Spec);
}

double PowersetElement::lowerBound(size_t I) const {
  double Best = std::numeric_limits<double>::infinity();
  for (const auto &E : Elems)
    Best = std::min(Best, E->lowerBound(I));
  if (Base)
    Best = std::max(Best, Base->lowerBound(I));
  return Best;
}

double PowersetElement::upperBound(size_t I) const {
  double Best = -std::numeric_limits<double>::infinity();
  for (const auto &E : Elems)
    Best = std::max(Best, E->upperBound(I));
  if (Base)
    Best = std::min(Best, Base->upperBound(I));
  return Best;
}

double PowersetElement::lowerBoundDiff(size_t K, size_t J) const {
  // The property must hold on every disjunct, so the bound is the min.
  double Best = std::numeric_limits<double>::infinity();
  for (const auto &E : Elems)
    Best = std::min(Best, E->lowerBoundDiff(K, J));
  if (Base)
    Best = std::max(Best, Base->lowerBoundDiff(K, J));
  return Best;
}

std::unique_ptr<AbstractElement>
PowersetElement::meetHalfspaceAtZero(size_t D, bool NonNegative) const {
  // A sound emptiness proof from the baseline trumps the disjunct meets.
  std::unique_ptr<AbstractElement> MetBase;
  if (Base) {
    MetBase = Base->meetHalfspaceAtZero(D, NonNegative);
    if (!MetBase)
      return nullptr;
  }
  std::vector<std::unique_ptr<AbstractElement>> Met;
  for (const auto &E : Elems)
    if (auto M = E->meetHalfspaceAtZero(D, NonNegative))
      Met.push_back(std::move(M));
  if (Met.empty())
    return nullptr;
  return std::make_unique<PowersetElement>(std::move(Met), Budget,
                                           std::move(MetBase));
}
