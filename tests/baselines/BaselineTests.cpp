//===- BaselineTests.cpp - Tests for the AI2/ReluVal/Reluplex baselines -------===//

#include "baselines/Ai2.h"
#include "baselines/ReluVal.h"
#include "baselines/Reluplex.h"

#include "nn/Builder.h"
#include "nn/Dense.h"
#include "nn/Relu.h"
#include "support/Random.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

using namespace charon;

namespace {



RobustnessProperty makeProperty(Box Region, size_t K) {
  RobustnessProperty P;
  P.Region = std::move(Region);
  P.TargetClass = K;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// AI2
//===----------------------------------------------------------------------===//

TEST(Ai2Test, VerifiesEasyProperty) {
  Network Net = testing_nets::makeExample22Network();
  Ai2Result R =
      ai2Verify(Net, makeProperty(Box(Vector{-1.0}, Vector{1.0}), 1),
                ai2Zonotope());
  EXPECT_EQ(R.Result, Ai2Outcome::Verified);
  EXPECT_GT(R.Margin, 0.0);
}

TEST(Ai2Test, CannotFalsifyOnlyUnknown) {
  // The property is false on [-1, 2]; AI2 has no counterexample search so
  // it must answer Unknown, never Falsified (there is no such verdict).
  Network Net = testing_nets::makeExample22Network();
  Ai2Result R =
      ai2Verify(Net, makeProperty(Box(Vector{-1.0}, Vector{2.0}), 1),
                ai2Zonotope());
  EXPECT_EQ(R.Result, Ai2Outcome::Unknown);
  EXPECT_LE(R.Margin, 0.0);
}

TEST(Ai2Test, Bounded64AtLeastAsPreciseAsZonotope) {
  Rng NetRng(3);
  Rng RegionRng(4);
  for (int T = 0; T < 5; ++T) {
    Network Net = makeMlp(3, {8, 8}, 3, NetRng);
    Vector Center(3);
    for (size_t I = 0; I < 3; ++I)
      Center[I] = RegionRng.uniform(-0.4, 0.4);
    Box Region = Box::linfBall(Center, 0.2, -1.0, 1.0);
    auto Prop = makeProperty(Region, Net.classify(Center));
    Ai2Result Z = ai2Verify(Net, Prop, ai2Zonotope());
    Ai2Result B64 = ai2Verify(Net, Prop, ai2Bounded64());
    EXPECT_GE(B64.Margin, Z.Margin - 1e-9) << "trial " << T;
  }
}

TEST(Ai2Test, TimeoutClassification) {
  Network Net = testing_nets::makeExample22Network();
  Ai2Config C = ai2Zonotope(/*TimeLimitSeconds=*/1e-12);
  Ai2Result R =
      ai2Verify(Net, makeProperty(Box(Vector{-1.0}, Vector{1.0}), 1), C);
  EXPECT_EQ(R.Result, Ai2Outcome::Timeout);
}

//===----------------------------------------------------------------------===//
// ReluVal
//===----------------------------------------------------------------------===//

TEST(ReluValTest, VerifiesXorRegionViaRefinement) {
  Network Net = testing_nets::makeXorNetwork();
  ReluValConfig Config;
  Config.TimeLimitSeconds = 10.0;
  ReluValResult R =
      reluvalVerify(Net, makeProperty(Box::uniform(2, 0.3, 0.7), 1), Config);
  EXPECT_EQ(R.Result, Outcome::Verified);
  EXPECT_GE(R.AnalyzeCalls, 1);
}

TEST(ReluValTest, FalsifiesOnlyViaConcreteProbe) {
  // The wide XOR region's center (0.5, 0.5) lies on the boundary where
  // class 0 wins (objective <= 0), so the concrete probe fires.
  Network Net = testing_nets::makeXorNetwork();
  ReluValConfig Config;
  Config.TimeLimitSeconds = 10.0;
  ReluValResult R =
      reluvalVerify(Net, makeProperty(Box::uniform(2, 0.1, 0.9), 1), Config);
  if (R.Result == Outcome::Falsified)
    EXPECT_LE(Net.objective(R.Counterexample, 1), 0.0);
  else
    EXPECT_EQ(R.Result, Outcome::Timeout);
}

TEST(ReluValTest, SoundOnVerifiedRegions) {
  Rng NetRng(5);
  Rng SampleRng(6);
  int Verified = 0;
  for (int T = 0; T < 8; ++T) {
    Network Net = makeMlp(2, {6}, 2, NetRng);
    Vector Center{SampleRng.uniform(-0.3, 0.3), SampleRng.uniform(-0.3, 0.3)};
    Box Region = Box::linfBall(Center, 0.1, -1.0, 1.0);
    size_t K = Net.classify(Center);
    ReluValConfig Config;
    Config.TimeLimitSeconds = 5.0;
    ReluValResult R = reluvalVerify(Net, makeProperty(Region, K), Config);
    if (R.Result != Outcome::Verified)
      continue;
    ++Verified;
    for (int S = 0; S < 200; ++S)
      EXPECT_EQ(Net.classify(Region.sample(SampleRng)), K);
  }
  EXPECT_GE(Verified, 3);
}

TEST(ReluValTest, RespectsTimeBudget) {
  Rng NetRng(7);
  Network Net = makeMlp(6, {20, 20}, 3, NetRng);
  Box Region = Box::uniform(6, -1.0, 1.0);
  ReluValConfig Config;
  Config.TimeLimitSeconds = 0.2;
  Stopwatch W;
  reluvalVerify(Net, makeProperty(Region, 0), Config);
  EXPECT_LT(W.seconds(), 5.0);
}

//===----------------------------------------------------------------------===//
// Reluplex-style complete verifier
//===----------------------------------------------------------------------===//

TEST(ReluplexTest, VerifiesXorRegion) {
  Network Net = testing_nets::makeXorNetwork();
  ReluplexConfig Config;
  Config.TimeLimitSeconds = 30.0;
  ReluplexResult R =
      reluplexVerify(Net, makeProperty(Box::uniform(2, 0.3, 0.7), 1), Config);
  EXPECT_EQ(R.Result, Outcome::Verified);
  EXPECT_GE(R.LpSolves, 1);
}

TEST(ReluplexTest, FalsifiesWithTrueCounterexample) {
  Network Net = testing_nets::makeXorNetwork();
  ReluplexConfig Config;
  Config.TimeLimitSeconds = 30.0;
  RobustnessProperty Prop = makeProperty(Box::uniform(2, 0.1, 0.9), 1);
  ReluplexResult R = reluplexVerify(Net, Prop, Config);
  ASSERT_EQ(R.Result, Outcome::Falsified);
  EXPECT_TRUE(Prop.Region.contains(R.Counterexample, 1e-7));
  EXPECT_LE(Net.objective(R.Counterexample, 1), 0.0);
}

TEST(ReluplexTest, Example22BothVerdicts) {
  Network Net = testing_nets::makeExample22Network();
  ReluplexConfig Config;
  Config.TimeLimitSeconds = 30.0;
  ReluplexResult Robust =
      reluplexVerify(Net, makeProperty(Box(Vector{-1.0}, Vector{1.0}), 1),
                     Config);
  EXPECT_EQ(Robust.Result, Outcome::Verified);
  ReluplexResult Broken =
      reluplexVerify(Net, makeProperty(Box(Vector{-1.0}, Vector{2.0}), 1),
                     Config);
  ASSERT_EQ(Broken.Result, Outcome::Falsified);
  EXPECT_LE(Net.objective(Broken.Counterexample, 1), 0.0);
}

TEST(ReluplexTest, AgreesWithSamplingOnRandomNets) {
  // Completeness check: on small random networks, the verdict must agree
  // with dense sampling (sampling finds a cex => Falsified; Reluplex says
  // Verified => sampling finds nothing).
  Rng NetRng(9);
  Rng SampleRng(10);
  for (int T = 0; T < 6; ++T) {
    Network Net = makeMlp(2, {4}, 2, NetRng);
    Vector Center{SampleRng.uniform(-0.5, 0.5), SampleRng.uniform(-0.5, 0.5)};
    Box Region = Box::linfBall(Center, 0.3, -1.0, 1.0);
    size_t K = Net.classify(Center);
    ReluplexConfig Config;
    Config.TimeLimitSeconds = 20.0;
    ReluplexResult R = reluplexVerify(Net, makeProperty(Region, K), Config);
    bool SamplingFoundCex = false;
    for (int S = 0; S < 2000 && !SamplingFoundCex; ++S)
      SamplingFoundCex = Net.classify(Region.sample(SampleRng)) != K;
    if (R.Result == Outcome::Verified) {
      EXPECT_FALSE(SamplingFoundCex) << "trial " << T;
    }
    if (SamplingFoundCex) {
      EXPECT_EQ(R.Result, Outcome::Falsified) << "trial " << T;
    }
  }
}

TEST(ReluplexTest, NodeCapYieldsTimeout) {
  // Find a robust instance that genuinely needs branching, then confirm
  // that capping the node budget below its tree size yields Timeout.
  Rng NetRng(11);
  Rng ProbeRng(12);
  for (int T = 0; T < 20; ++T) {
    Network Net = makeMlp(3, {10, 10}, 3, NetRng);
    Vector Center(3);
    for (size_t I = 0; I < 3; ++I)
      Center[I] = ProbeRng.uniform(-0.4, 0.4);
    Box Region = Box::linfBall(Center, 0.25, -1.0, 1.0);
    auto Prop = makeProperty(Region, Net.classify(Center));
    ReluplexConfig Full;
    Full.TimeLimitSeconds = 10.0;
    ReluplexResult Reference = reluplexVerify(Net, Prop, Full);
    if (Reference.Result != Outcome::Verified || Reference.Nodes < 3)
      continue; // Too easy (or falsified); try another instance.
    ReluplexConfig Capped;
    Capped.MaxNodes = Reference.Nodes - 1;
    ReluplexResult R = reluplexVerify(Net, Prop, Capped);
    EXPECT_EQ(R.Result, Outcome::Timeout);
    return;
  }
  GTEST_SKIP() << "no branching-heavy verified instance found";
}
