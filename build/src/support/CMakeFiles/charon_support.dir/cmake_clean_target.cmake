file(REMOVE_RECURSE
  "libcharon_support.a"
)
