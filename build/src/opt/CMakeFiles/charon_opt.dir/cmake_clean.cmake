file(REMOVE_RECURSE
  "CMakeFiles/charon_opt.dir/BayesOpt.cpp.o"
  "CMakeFiles/charon_opt.dir/BayesOpt.cpp.o.d"
  "CMakeFiles/charon_opt.dir/GaussianProcess.cpp.o"
  "CMakeFiles/charon_opt.dir/GaussianProcess.cpp.o.d"
  "CMakeFiles/charon_opt.dir/Pgd.cpp.o"
  "CMakeFiles/charon_opt.dir/Pgd.cpp.o.d"
  "libcharon_opt.a"
  "libcharon_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charon_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
