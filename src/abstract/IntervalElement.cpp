//===- IntervalElement.cpp - Interval (box) abstract domain ------------------===//

#include "abstract/IntervalElement.h"

#include "nn/Activation.h"

#include <algorithm>
#include <cassert>

using namespace charon;

IntervalElement::IntervalElement(const Box &Region)
    : Lo(Region.lower()), Hi(Region.upper()) {}

IntervalElement::IntervalElement(Vector Lower, Vector Upper)
    : Lo(std::move(Lower)), Hi(std::move(Upper)) {
  assert(Lo.size() == Hi.size() && "bound size mismatch");
}

std::unique_ptr<AbstractElement> IntervalElement::clone() const {
  return std::make_unique<IntervalElement>(Lo, Hi);
}

void IntervalElement::applyAffine(const Matrix &W, const Vector &B) {
  assert(W.cols() == dim() && "affine shape mismatch");
  size_t OutDim = W.rows();
  Vector NewLo(OutDim), NewHi(OutDim);
  for (size_t R = 0; R < OutDim; ++R) {
    const double *Row = W.row(R);
    double L = B[R], U = B[R];
    for (size_t C = 0, E = dim(); C < E; ++C) {
      double Coef = Row[C];
      if (Coef >= 0.0) {
        L += Coef * Lo[C];
        U += Coef * Hi[C];
      } else {
        L += Coef * Hi[C];
        U += Coef * Lo[C];
      }
    }
    NewLo[R] = L;
    NewHi[R] = U;
  }
  Lo = std::move(NewLo);
  Hi = std::move(NewHi);
}

void IntervalElement::applyActivation(ActivationKind K, size_t Begin,
                                      size_t End) {
  assert(Begin <= End && End <= dim() && "activation range out of bounds");
  // Every supported activation is nondecreasing, so the per-coordinate image
  // of the interval endpoints is exact (activationRange absorbs libm error
  // on the smooth kinds).
  for (size_t I = Begin; I < End; ++I)
    activationRange(K, Lo[I], Hi[I], Lo[I], Hi[I]);
}

void IntervalElement::applyMaxPool(const PoolSpec &Spec) {
  size_t OutDim = Spec.PoolIndices.size();
  Vector NewLo(OutDim), NewHi(OutDim);
  for (size_t O = 0; O < OutDim; ++O) {
    const std::vector<int> &Pool = Spec.PoolIndices[O];
    assert(!Pool.empty() && "empty pool window");
    double L = Lo[Pool.front()], U = Hi[Pool.front()];
    for (size_t I = 1; I < Pool.size(); ++I) {
      L = std::max(L, Lo[Pool[I]]);
      U = std::max(U, Hi[Pool[I]]);
    }
    NewLo[O] = L;
    NewHi[O] = U;
  }
  Lo = std::move(NewLo);
  Hi = std::move(NewHi);
}

double IntervalElement::lowerBoundDiff(size_t K, size_t J) const {
  // Boxes carry no correlation; the best sound bound is the corner case.
  return Lo[K] - Hi[J];
}

std::unique_ptr<AbstractElement>
IntervalElement::meetHalfspaceAtZero(size_t D, bool NonNegative) const {
  assert(D < dim() && "meet dimension out of range");
  if (NonNegative) {
    if (Hi[D] < 0.0)
      return nullptr;
    Vector NewLo = Lo;
    NewLo[D] = std::max(NewLo[D], 0.0);
    return std::make_unique<IntervalElement>(std::move(NewLo), Hi);
  }
  if (Lo[D] > 0.0)
    return nullptr;
  Vector NewHi = Hi;
  NewHi[D] = std::min(NewHi[D], 0.0);
  return std::make_unique<IntervalElement>(Lo, std::move(NewHi));
}
