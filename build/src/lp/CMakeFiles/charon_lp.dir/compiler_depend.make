# Empty compiler generated dependencies file for charon_lp.
# This may be replaced when dependencies are built.
