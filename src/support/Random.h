//===- Random.h - Deterministic random number generation ------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (splitmix64 core). Every stochastic
/// component in the project (dataset synthesis, network initialization, PGD
/// restarts, Bayesian-optimization sampling) draws from an explicitly seeded
/// Rng so that experiments are reproducible run-to-run.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_SUPPORT_RANDOM_H
#define CHARON_SUPPORT_RANDOM_H

#include <cstdint>
#include <vector>

namespace charon {

/// Deterministic pseudo-random generator built on splitmix64.
///
/// The generator is cheap to copy and fork: \c fork() derives an independent
/// stream, which lets parallel workers use decorrelated randomness while the
/// overall experiment stays reproducible.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns an integer uniformly distributed in [0, N). Requires N > 0.
  uint64_t uniformInt(uint64_t N);

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double gaussian();

  /// Returns a sample from N(Mean, Stddev^2).
  double gaussian(double Mean, double Stddev);

  /// Derives an independent generator seeded from this stream.
  Rng fork();

  /// Fisher-Yates shuffles \p Indices in place.
  void shuffle(std::vector<int> &Indices);

private:
  uint64_t State;
  bool HasSpare = false;
  double Spare = 0.0;
};

} // namespace charon

#endif // CHARON_SUPPORT_RANDOM_H
