//===- CheckpointShardTests.cpp - splitCheckpoint/mergeCheckpoints laws -------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// The fleet coordinator (src/fleet/) rests on two properties of checkpoint
// sharding: shards are contiguous runs of the DFS-ordered frontier (so the
// DFS-earliest-falsified-shard rule reproduces the serial verdict), and
// merge(split(Cp, K)) is the identity byte-for-byte (so scattering a
// search across workers and gathering the remnants loses nothing). These
// tests pin both down, for every K that matters: 1, several, exactly N,
// and far more than N (empty tail shards).
//
//===----------------------------------------------------------------------===//

#include "search/Checkpoint.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace charon;

namespace {

std::vector<uint8_t> path(std::initializer_list<int> Bits) {
  std::vector<uint8_t> P;
  for (int B : Bits)
    P.push_back(static_cast<uint8_t>(B));
  return P;
}

/// A frontier of pairwise non-ancestor nodes in DFS order (mixed depths,
/// like a real interrupted search), with distinguishable per-node data.
SearchCheckpoint sampleCheckpoint(size_t Nodes) {
  SearchCheckpoint Cp;
  Cp.Order = FrontierOrder::Lifo;
  Cp.NetworkFingerprint = 0xfeedfacecafebeefull;
  Cp.PropertyDigest = 42;
  Cp.ConfigDigest = 0xffffffffffffffffull;
  Cp.Stats.NodesExpanded = 17;
  Cp.Stats.Splits = 9;
  Cp.Stats.PgdCalls = 31;
  Cp.Stats.MaxDepth = 5;
  Cp.Stats.Seconds = 1.25;

  // Leaves of a complete depth-d tree are pairwise non-ancestor and their
  // left-to-right order is DFS order; drop to the first Nodes of them.
  size_t Depth = 1;
  while ((size_t(1) << Depth) < Nodes)
    ++Depth;
  for (size_t I = 0; I < Nodes; ++I) {
    CheckpointNode N;
    for (size_t B = Depth; B-- > 0;)
      N.Path.push_back(static_cast<uint8_t>((I >> B) & 1));
    double Lo = static_cast<double>(I);
    N.Region = Box(Vector{Lo, -1.0}, Vector{Lo + 0.5, 1.0});
    if (I % 3 == 0)
      N.Warm = Vector{Lo + 0.25, 0.125};
    N.Priority = -0.01 * static_cast<double>(I);
    Cp.Open.push_back(std::move(N));
  }
  return Cp;
}

} // namespace

TEST(DfsPathOrderTest, FirstDivergingBitDecides) {
  EXPECT_TRUE(dfsPathPrecedes(path({0}), path({1})));
  EXPECT_FALSE(dfsPathPrecedes(path({1}), path({0})));
  EXPECT_TRUE(dfsPathPrecedes(path({0, 1, 0}), path({0, 1, 1})));
  EXPECT_TRUE(dfsPathPrecedes(path({0, 1}), path({1, 0})));
}

TEST(DfsPathOrderTest, AncestorPrecedesDescendants) {
  EXPECT_TRUE(dfsPathPrecedes(path({}), path({0})));
  EXPECT_TRUE(dfsPathPrecedes(path({}), path({1})));
  EXPECT_TRUE(dfsPathPrecedes(path({0}), path({0, 0})));
  EXPECT_TRUE(dfsPathPrecedes(path({0}), path({0, 1})));
  EXPECT_FALSE(dfsPathPrecedes(path({0, 0}), path({0})));
  // ... and a *descendant of an earlier sibling* still precedes the
  // later sibling, no matter how deep.
  EXPECT_TRUE(dfsPathPrecedes(path({0, 1, 1, 1}), path({1})));
}

TEST(DfsPathOrderTest, IsAStrictTotalOrderOnDistinctPaths) {
  std::vector<std::vector<uint8_t>> Paths = {
      path({}),        path({0}),       path({0, 0}), path({0, 1}),
      path({0, 1, 1}), path({1}),       path({1, 0}), path({1, 0, 0}),
      path({1, 1}),
  };
  // The list above is written in DFS order; the comparator must agree.
  for (size_t I = 0; I < Paths.size(); ++I) {
    EXPECT_FALSE(dfsPathPrecedes(Paths[I], Paths[I])) << "irreflexive at "
                                                      << I;
    for (size_t K = I + 1; K < Paths.size(); ++K) {
      EXPECT_TRUE(dfsPathPrecedes(Paths[I], Paths[K])) << I << " vs " << K;
      EXPECT_FALSE(dfsPathPrecedes(Paths[K], Paths[I])) << K << " vs " << I;
    }
  }
}

TEST(CheckpointShardTest, SplitMergeRoundTripsByteIdentically) {
  for (size_t Nodes : {size_t(1), size_t(5), size_t(13)}) {
    SearchCheckpoint Cp = sampleCheckpoint(Nodes);
    std::string Canonical = serializeCheckpoint(Cp);
    for (size_t K : {size_t(1), size_t(2), size_t(3), size_t(4), size_t(6),
                     size_t(16)}) {
      SCOPED_TRACE("nodes=" + std::to_string(Nodes) +
                   " K=" + std::to_string(K));
      std::vector<SearchCheckpoint> Shards = splitCheckpoint(Cp, K);
      ASSERT_EQ(Shards.size(), K);
      SearchCheckpoint Merged = mergeCheckpoints(Shards);
      EXPECT_EQ(serializeCheckpoint(Merged), Canonical);
    }
  }
}

TEST(CheckpointShardTest, ShardsAreContiguousDfsRunsOfEvenSize) {
  SearchCheckpoint Cp = sampleCheckpoint(11);
  std::vector<SearchCheckpoint> Shards = splitCheckpoint(Cp, 4);
  ASSERT_EQ(Shards.size(), 4u);

  // Sizes as even as possible: 11 = 3+3+3+2.
  size_t Total = 0, MaxSize = 0, MinSize = Cp.Open.size();
  for (const SearchCheckpoint &S : Shards) {
    Total += S.Open.size();
    MaxSize = std::max(MaxSize, S.Open.size());
    MinSize = std::min(MinSize, S.Open.size());
  }
  EXPECT_EQ(Total, Cp.Open.size());
  EXPECT_LE(MaxSize - MinSize, 1u);

  // Concatenating the shards reproduces the original frontier in order —
  // the contiguity that makes shards totally DFS-ordered units.
  size_t At = 0;
  for (const SearchCheckpoint &S : Shards)
    for (const CheckpointNode &N : S.Open)
      EXPECT_EQ(N.Path, Cp.Open[At++].Path);

  // Every node of shard I DFS-precedes every node of shard I+1.
  for (size_t I = 0; I + 1 < Shards.size(); ++I)
    for (const CheckpointNode &A : Shards[I].Open)
      for (const CheckpointNode &B : Shards[I + 1].Open)
        EXPECT_TRUE(dfsPathPrecedes(A.Path, B.Path));

  // Every shard carries the header needed to validate independently.
  for (const SearchCheckpoint &S : Shards) {
    EXPECT_EQ(S.Order, Cp.Order);
    EXPECT_EQ(S.NetworkFingerprint, Cp.NetworkFingerprint);
    EXPECT_EQ(S.PropertyDigest, Cp.PropertyDigest);
    EXPECT_EQ(S.ConfigDigest, Cp.ConfigDigest);
  }
}

TEST(CheckpointShardTest, StatsRideExactlyOneShard) {
  SearchCheckpoint Cp = sampleCheckpoint(7);
  std::vector<SearchCheckpoint> Shards = splitCheckpoint(Cp, 3);
  ASSERT_EQ(Shards.size(), 3u);
  EXPECT_EQ(Shards[0].Stats.NodesExpanded, Cp.Stats.NodesExpanded);
  EXPECT_EQ(Shards[0].Stats.Seconds, Cp.Stats.Seconds);
  for (size_t I = 1; I < Shards.size(); ++I) {
    EXPECT_EQ(Shards[I].Stats.NodesExpanded, 0);
    EXPECT_EQ(Shards[I].Stats.PgdCalls, 0);
    EXPECT_EQ(Shards[I].Stats.Seconds, 0.0);
  }
  // So summing terminal shard stats (what the coordinator does) never
  // double-counts the pre-split work.
  VerifyStats Sum;
  for (const SearchCheckpoint &S : Shards)
    Sum += S.Stats;
  EXPECT_EQ(Sum.NodesExpanded, Cp.Stats.NodesExpanded);
  EXPECT_EQ(Sum.PgdCalls, Cp.Stats.PgdCalls);
  EXPECT_EQ(Sum.Seconds, Cp.Stats.Seconds);
}

TEST(CheckpointShardTest, MoreShardsThanNodesYieldsEmptyTails) {
  SearchCheckpoint Cp = sampleCheckpoint(2);
  std::vector<SearchCheckpoint> Shards = splitCheckpoint(Cp, 5);
  ASSERT_EQ(Shards.size(), 5u);
  EXPECT_EQ(Shards[0].Open.size(), 1u);
  EXPECT_EQ(Shards[1].Open.size(), 1u);
  for (size_t I = 2; I < 5; ++I)
    EXPECT_TRUE(Shards[I].Open.empty());
  EXPECT_EQ(serializeCheckpoint(mergeCheckpoints(Shards)),
            serializeCheckpoint(Cp));
}

TEST(CheckpointShardTest, EmptyFrontierSplitsAndMerges) {
  SearchCheckpoint Cp = sampleCheckpoint(3);
  Cp.Open.clear();
  std::vector<SearchCheckpoint> Shards = splitCheckpoint(Cp, 3);
  ASSERT_EQ(Shards.size(), 3u);
  for (const SearchCheckpoint &S : Shards)
    EXPECT_TRUE(S.Open.empty());
  EXPECT_EQ(Shards[0].Stats.NodesExpanded, Cp.Stats.NodesExpanded);
  EXPECT_EQ(serializeCheckpoint(mergeCheckpoints(Shards)),
            serializeCheckpoint(Cp));
}

TEST(CheckpointShardTest, KZeroIsTreatedAsOne) {
  SearchCheckpoint Cp = sampleCheckpoint(4);
  std::vector<SearchCheckpoint> Shards = splitCheckpoint(Cp, 0);
  ASSERT_EQ(Shards.size(), 1u);
  EXPECT_EQ(serializeCheckpoint(Shards[0]), serializeCheckpoint(Cp));
}

TEST(CheckpointShardTest, MergeRestoresDfsOrderFromShuffledShards) {
  SearchCheckpoint Cp = sampleCheckpoint(9);
  std::vector<SearchCheckpoint> Shards = splitCheckpoint(Cp, 3);
  std::swap(Shards[0].Open, Shards[2].Open); // gather order != DFS order
  SearchCheckpoint Merged = mergeCheckpoints(Shards);
  ASSERT_EQ(Merged.Open.size(), Cp.Open.size());
  for (size_t I = 0; I < Merged.Open.size(); ++I)
    EXPECT_EQ(Merged.Open[I].Path, Cp.Open[I].Path);
}
