file(REMOVE_RECURSE
  "libcharon_data.a"
)
