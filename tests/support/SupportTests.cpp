//===- SupportTests.cpp - Tests for the support library ----------------------===//

#include "support/Check.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

using namespace charon;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-3.0, 5.5);
    EXPECT_GE(U, -3.0);
    EXPECT_LT(U, 5.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng R(11);
  OnlineStats S;
  for (int I = 0; I < 20000; ++I)
    S.add(R.uniform());
  EXPECT_NEAR(S.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng R(13);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.uniformInt(10);
    EXPECT_LT(V, 10u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 10u);
}

TEST(RngTest, GaussianMoments) {
  Rng R(17);
  OnlineStats S;
  for (int I = 0; I < 50000; ++I)
    S.add(R.gaussian());
  EXPECT_NEAR(S.mean(), 0.0, 0.02);
  EXPECT_NEAR(S.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianScaled) {
  Rng R(19);
  OnlineStats S;
  for (int I = 0; I < 50000; ++I)
    S.add(R.gaussian(3.0, 2.0));
  EXPECT_NEAR(S.mean(), 3.0, 0.05);
  EXPECT_NEAR(S.stddev(), 2.0, 0.05);
}

TEST(RngTest, ForkDecorrelates) {
  Rng A(23);
  Rng B = A.fork();
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(29);
  std::vector<int> V{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  R.shuffle(V);
  std::set<int> S(V.begin(), V.end());
  EXPECT_EQ(S.size(), 10u);
}

//===----------------------------------------------------------------------===//
// OnlineStats
//===----------------------------------------------------------------------===//

TEST(StatsTest, EmptyDefaults) {
  OnlineStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(StatsTest, KnownSequence) {
  OnlineStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({}), 1.0);
  EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(StatsTest, Median) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

//===----------------------------------------------------------------------===//
// Timer / Deadline
//===----------------------------------------------------------------------===//

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch W;
  volatile double Sink = 0.0;
  for (int I = 0; I < 100000; ++I)
    Sink += std::sqrt(static_cast<double>(I));
  EXPECT_GT(W.seconds(), 0.0);
}

TEST(TimerTest, UnlimitedDeadlineNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.expired());
  EXPECT_TRUE(std::isinf(D.remaining()));
}

TEST(TimerTest, ZeroDeadlineExpiresImmediately) {
  Deadline D(0.0);
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remaining(), 0.0);
}

TEST(TimerTest, ProcessCpuSecondsMonotone) {
  double A = processCpuSeconds();
  volatile double Sink = 0.0;
  for (int I = 0; I < 200000; ++I)
    Sink += std::sqrt(static_cast<double>(I));
  double B = processCpuSeconds();
  EXPECT_GE(B, A);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndices) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(50);
  Pool.parallelFor(50, [&Hits](int I) { Hits[I].fetch_add(1); });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.submit([&] {
    Counter.fetch_add(1);
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Counter] { Counter.fetch_add(1); });
  });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 11);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 2);
}

TEST(ThreadPoolTest, DefaultSizeIsPositive) {
  ThreadPool Pool;
  EXPECT_GE(Pool.size(), 1u);
}
