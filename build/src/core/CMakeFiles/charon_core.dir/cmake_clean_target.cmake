file(REMOVE_RECURSE
  "libcharon_core.a"
)
