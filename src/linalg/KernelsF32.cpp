//===- KernelsF32.cpp - Sound float32 kernels for the abstract path ---------===//

#include "linalg/KernelsF32.h"

#include "linalg/Kernels.h"
#include "linalg/SimdOpsImpl.h"

#include <atomic>
#include <cassert>
#include <cfloat>
#include <cmath>
#include <limits>

using namespace charon;
using namespace charon::kernels;

//===----------------------------------------------------------------------===//
// Scalar shard bodies (shared with backends lacking float variants)
//===----------------------------------------------------------------------===//

void detail::mmtRowsFScalar(const MatrixF &A, const MatrixF &B, MatrixF &C,
                            size_t RowOffset, size_t Begin, size_t End) {
  const size_t K = A.cols();
  const size_t N = B.rows();
  for (size_t I = Begin; I < End; ++I) {
    const float *ARow = A.row(I);
    float *CRow = C.row(RowOffset + I);
    for (size_t J = 0; J < N; ++J) {
      const float *BRow = B.row(J);
      float Sum = 0.0f;
      for (size_t Kk = 0; Kk < K; ++Kk)
        Sum += ARow[Kk] * BRow[Kk];
      CRow[J] = Sum;
    }
  }
}

void detail::scaleColumnsRowsFScalar(MatrixF &A, const Vector &Scale,
                                     size_t Begin, size_t End) {
  const double *S = Scale.data();
  const size_t NC = A.cols();
  for (size_t I = Begin; I < End; ++I) {
    float *Row = A.row(I);
    for (size_t J = 0; J < NC; ++J)
      Row[J] = static_cast<float>(S[J] * static_cast<double>(Row[J]));
  }
}

void detail::absColumnSumsColsFScalar(const MatrixF &A, double *Out,
                                      size_t ColBegin, size_t ColEnd) {
  const size_t NR = A.rows();
  for (size_t I = 0; I < NR; ++I) {
    const float *Row = A.row(I);
    for (size_t J = ColBegin; J < ColEnd; ++J)
      Out[J] += std::fabs(static_cast<double>(Row[J]));
  }
}

//===----------------------------------------------------------------------===//
// Public float kernels (dispatch + sharding)
//===----------------------------------------------------------------------===//

MatrixF kernels::toFloat32(const Matrix &A) {
  MatrixF F = MatrixF::uninit(A.rows(), A.cols());
  for (size_t I = 0, NR = A.rows(); I < NR; ++I) {
    const double *Row = A.row(I);
    float *FRow = F.row(I);
    for (size_t J = 0, NC = A.cols(); J < NC; ++J)
      FRow[J] = static_cast<float>(Row[J]);
  }
  return F;
}

Matrix kernels::toDouble(const MatrixF &A) {
  Matrix D = Matrix::uninit(A.rows(), A.cols());
  for (size_t I = 0, NR = A.rows(); I < NR; ++I) {
    const float *Row = A.row(I);
    double *DRow = D.row(I);
    for (size_t J = 0, NC = A.cols(); J < NC; ++J)
      DRow[J] = static_cast<double>(Row[J]);
  }
  return D;
}

void kernels::matMulTransposedIntoF(const MatrixF &A, const MatrixF &B,
                                    MatrixF &C, size_t RowOffset) {
  assert(A.cols() == B.cols() && "matMulTransposedF shape mismatch");
  assert(C.cols() == B.rows() && RowOffset + A.rows() <= C.rows() &&
         "matMulTransposedF destination too small");
  const detail::SimdOps &Ops = detail::activeOps();
  parallelFor(A.rows(), 2 * A.cols() * B.rows(),
              [&A, &B, &C, RowOffset, &Ops](size_t Begin, size_t End) {
                Ops.MmtRowsF(A, B, C, RowOffset, Begin, End);
              });
}

Vector kernels::absColumnSumsF(const MatrixF &A) {
  Vector Out(A.cols());
  double *OutData = Out.data();
  const detail::SimdOps &Ops = detail::activeOps();
  parallelFor(A.cols(), A.rows(),
              [&A, OutData, &Ops](size_t Begin, size_t End) {
                Ops.AbsColumnSumsColsF(A, OutData, Begin, End);
              });
  return Out;
}

Vector kernels::absRowSumsF(const MatrixF &A) {
  Vector Out(A.rows());
  parallelFor(A.rows(), A.cols(), [&A, &Out](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      const float *Row = A.row(I);
      double Sum = 0.0;
      for (size_t J = 0, NC = A.cols(); J < NC; ++J)
        Sum += std::fabs(static_cast<double>(Row[J]));
      Out[I] = Sum;
    }
  });
  return Out;
}

void kernels::scaleColumnsF(MatrixF &A, const Vector &Scale) {
  assert(A.cols() == Scale.size() && "scaleColumnsF shape mismatch");
  const detail::SimdOps &Ops = detail::activeOps();
  parallelFor(A.rows(), A.cols(), [&A, &Scale, &Ops](size_t Begin, size_t End) {
    Ops.ScaleColumnsRowsF(A, Scale, Begin, End);
  });
}

void kernels::gatherColumnsF(const MatrixF &A, const std::vector<int> &SrcCol,
                             MatrixF &Out) {
  assert(Out.rows() == A.rows() && Out.cols() == SrcCol.size() &&
         "gatherColumnsF shape mismatch");
  parallelFor(A.rows(), SrcCol.size(),
              [&A, &SrcCol, &Out](size_t Begin, size_t End) {
                for (size_t I = Begin; I < End; ++I) {
                  const float *Row = A.row(I);
                  float *OutRow = Out.row(I);
                  for (size_t O = 0, NO = SrcCol.size(); O < NO; ++O)
                    OutRow[O] = SrcCol[O] < 0 ? 0.0f : Row[SrcCol[O]];
                }
              });
}

void kernels::oneHotMatMulIntoF(const std::vector<OneHot> &Sparse,
                                const Matrix &W, MatrixF &C, size_t RowOffset,
                                Vector &ErrOut) {
  assert(C.cols() == W.rows() && RowOffset + Sparse.size() <= C.rows() &&
         "oneHotMatMulIntoF destination too small");
  assert(ErrOut.size() == W.rows() && "oneHotMatMulIntoF error size mismatch");
  const size_t NR = W.rows();
  // Serial: ErrOut[r] is shared across generators, and the tail is orders of
  // magnitude cheaper than the dense product it rides along with.
  for (size_t S = 0, NS = Sparse.size(); S < NS; ++S) {
    const OneHot &G = Sparse[S];
    assert(G.Coord < W.cols() && "one-hot coordinate range");
    float *Row = C.row(RowOffset + S);
    for (size_t R = 0; R < NR; ++R) {
      double Val = G.Mag * W(R, G.Coord);
      float F = static_cast<float>(Val);
      Row[R] = F;
      ErrOut[R] += std::fabs(Val - static_cast<double>(F));
    }
  }
}

//===----------------------------------------------------------------------===//
// Outward-rounding error model
//===----------------------------------------------------------------------===//

namespace {

/// 2^-24: unit roundoff of float32.
constexpr double EpsF = 1.0 / 16777216.0;

/// Unit roundoff of double (DBL_EPSILON is 2 ulp of 1.0).
constexpr double EpsD = DBL_EPSILON / 2.0;

std::atomic<double> &errDirState() {
  static std::atomic<double> Dir{1.0};
  return Dir;
}

} // namespace

double kernels::float32ErrDir() {
  return errDirState().load(std::memory_order_relaxed);
}

void kernels::setFloat32ErrDirForTest(double Dir) {
  errDirState().store(Dir, std::memory_order_relaxed);
}

double kernels::float32Outward(double NonNeg) {
  return float32ErrDir() * NonNeg;
}

double kernels::roundOut(double X, double Terms) {
  double Dir = float32ErrDir();
  double Y = X + Dir * (std::fabs(X) * (Terms * EpsD));
  return Dir > 0.0
             ? std::nextafter(Y, std::numeric_limits<double>::infinity())
             : std::nextafter(Y, -std::numeric_limits<double>::infinity());
}

double kernels::float32Gamma(size_t K) {
  return float32ErrDir() * 2.0 * (static_cast<double>(K) + 8.0) * EpsF;
}

double kernels::float32Eta() { return float32ErrDir() * 1e-33; }

double kernels::float32ScaleEps() { return float32ErrDir() * 1.5 * EpsF; }

Vector kernels::float32AffinePad(const Matrix &W, const Vector &V) {
  assert(W.cols() == V.size() && "float32AffinePad shape mismatch");
  Vector Out(W.rows());
  const double Terms = static_cast<double>(W.cols()) + 2.0;
  const double Eta = float32Eta();
  const double *VData = V.data();
  parallelFor(W.rows(), 2 * W.cols(),
              [&W, &Out, VData, Terms, Eta](size_t Begin, size_t End) {
                for (size_t J = Begin; J < End; ++J) {
                  const double *Row = W.row(J);
                  double Sum = 0.0;
                  for (size_t Kk = 0, NK = W.cols(); Kk < NK; ++Kk)
                    Sum += std::fabs(Row[Kk]) * VData[Kk];
                  Out[J] = roundOut(Sum, Terms) + Eta;
                }
              });
  return Out;
}
