//===- Repro.cpp - Self-contained replayable fuzz repro files -----------------===//

#include "fuzz/Repro.h"

#include "core/PropertyIo.h"
#include "fuzz/Campaign.h"
#include "support/Random.h"

#include <fstream>
#include <iomanip>
#include <sstream>

using namespace charon;

void charon::saveRepro(const FuzzRepro &Repro, std::ostream &Os) {
  Os << "charon-fuzz-repro 1\n";
  Os << "campaign-seed " << Repro.CampaignSeed << "\n";
  Os << "case " << Repro.CaseIndex << "\n";
  Os << "expect " << (Repro.ExpectViolation ? "violation" : "clean") << "\n";
  Os << "oracle " << (Repro.Oracle.empty() ? "-" : Repro.Oracle) << "\n";
  Os << "message " << (Repro.Message.empty() ? "-" : Repro.Message) << "\n";
  Os << std::setprecision(17);
  Os << "samples " << Repro.Cfg.ContainmentSamples << "\n";
  Os << "subregions " << Repro.Cfg.SubregionTrials << "\n";
  Os << "tolerance " << Repro.Cfg.Tolerance << "\n";
  Os << "delta " << Repro.Cfg.Delta << "\n";
  Os << "budget " << Repro.Cfg.VerifyBudgetSeconds << "\n";
  Os << "verifier-seed " << Repro.Cfg.VerifierSeed << "\n";
  Os << "inject " << Repro.Cfg.InjectTighten << "\n";
  Os << "domains " << Repro.Domains.size();
  for (const DomainSpec &D : Repro.Domains)
    Os << " " << toString(D);
  Os << "\n";
  Os << "network ";
  writeNetworkSpec(Repro.Net, Os);
  saveProperty(Repro.Prop, Os);
}

std::optional<FuzzRepro> charon::loadRepro(std::istream &Is) {
  std::string Magic, Key;
  int Version = 0;
  if (!(Is >> Magic >> Version) || Magic != "charon-fuzz-repro" ||
      Version != 1)
    return std::nullopt;

  FuzzRepro Repro;
  if (!(Is >> Key >> Repro.CampaignSeed) || Key != "campaign-seed")
    return std::nullopt;
  if (!(Is >> Key >> Repro.CaseIndex) || Key != "case" || Repro.CaseIndex < 0)
    return std::nullopt;

  std::string Expect;
  if (!(Is >> Key >> Expect) || Key != "expect" ||
      (Expect != "violation" && Expect != "clean"))
    return std::nullopt;
  Repro.ExpectViolation = Expect == "violation";

  if (!(Is >> Key >> Repro.Oracle) || Key != "oracle")
    return std::nullopt;
  if (Repro.Oracle == "-")
    Repro.Oracle.clear();

  if (!(Is >> Key) || Key != "message")
    return std::nullopt;
  std::getline(Is, Repro.Message);
  if (!Repro.Message.empty() && Repro.Message.front() == ' ')
    Repro.Message.erase(0, 1);
  if (Repro.Message == "-")
    Repro.Message.clear();

  if (!(Is >> Key >> Repro.Cfg.ContainmentSamples) || Key != "samples" ||
      Repro.Cfg.ContainmentSamples < 0)
    return std::nullopt;
  if (!(Is >> Key >> Repro.Cfg.SubregionTrials) || Key != "subregions" ||
      Repro.Cfg.SubregionTrials < 0)
    return std::nullopt;
  if (!(Is >> Key >> Repro.Cfg.Tolerance) || Key != "tolerance" ||
      !(Repro.Cfg.Tolerance >= 0.0))
    return std::nullopt;
  if (!(Is >> Key >> Repro.Cfg.Delta) || Key != "delta")
    return std::nullopt;
  if (!(Is >> Key >> Repro.Cfg.VerifyBudgetSeconds) || Key != "budget")
    return std::nullopt;
  if (!(Is >> Key >> Repro.Cfg.VerifierSeed) || Key != "verifier-seed")
    return std::nullopt;
  if (!(Is >> Key >> Repro.Cfg.InjectTighten) || Key != "inject")
    return std::nullopt;

  size_t NumDomains = 0;
  if (!(Is >> Key >> NumDomains) || Key != "domains" || NumDomains > 64)
    return std::nullopt;
  for (size_t I = 0; I < NumDomains; ++I) {
    std::string Token;
    if (!(Is >> Token))
      return std::nullopt;
    std::optional<DomainSpec> D = parseDomainSpec(Token);
    if (!D)
      return std::nullopt;
    Repro.Domains.push_back(*D);
  }

  if (!(Is >> Key) || Key != "network" || !readNetworkSpec(Is, Repro.Net))
    return std::nullopt;

  std::optional<RobustnessProperty> Prop = loadProperty(Is);
  if (!Prop)
    return std::nullopt;
  Repro.Prop = std::move(*Prop);

  if (Repro.Prop.Region.dim() != specInputSize(Repro.Net) ||
      Repro.Prop.TargetClass >= specOutputSize(Repro.Net))
    return std::nullopt;
  return Repro;
}

bool charon::saveReproFile(const FuzzRepro &Repro, const std::string &Path) {
  std::ofstream Os(Path);
  if (!Os)
    return false;
  saveRepro(Repro, Os);
  return static_cast<bool>(Os);
}

std::optional<FuzzRepro> charon::loadReproFile(const std::string &Path) {
  std::ifstream Is(Path);
  if (!Is)
    return std::nullopt;
  return loadRepro(Is);
}

ReplayResult charon::replayRepro(const FuzzRepro &Repro) {
  // Mirror the campaign's RNG discipline exactly: the generation fork is
  // burned (the repro carries the generated artifacts), the oracle fork is
  // replayed.
  Rng Base = caseRng(Repro.CampaignSeed, Repro.CaseIndex);
  Rng GenR = Base.fork();
  (void)GenR;
  Rng OracleR = Base.fork();

  Network Net = buildNetwork(Repro.Net);
  std::vector<DomainSpec> Domains =
      Repro.Domains.empty() ? defaultFuzzDomains() : Repro.Domains;

  ReplayResult Result;
  Result.Violations =
      runFuzzCase(Net, Repro.Prop, Domains, Repro.Cfg, OracleR);
  Result.ViolationReproduced = !Result.Violations.empty();
  Result.MatchesExpectation =
      Result.ViolationReproduced == Repro.ExpectViolation;
  return Result;
}
