file(REMOVE_RECURSE
  "libcharon_linalg.a"
)
