file(REMOVE_RECURSE
  "CMakeFiles/harness_tests.dir/bench/HarnessTests.cpp.o"
  "CMakeFiles/harness_tests.dir/bench/HarnessTests.cpp.o.d"
  "harness_tests"
  "harness_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
