//===- NetworkRegistry.cpp - Shared network store with dedup ------------------===//

#include "service/NetworkRegistry.h"

#include "core/Digest.h"
#include "nn/Io.h"
#include "onnx/OnnxImport.h"
#include <cassert>

using namespace charon;

NetworkId NetworkRegistry::add(Network Net) {
  // Fingerprinting walks every layer's affineForm(), which also forces the
  // lazily built conv lowerings — so a registered network is read-only and
  // safe to share across verifier threads without further warm-up.
  uint64_t Fp = fingerprintNetwork(Net);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = ByFingerprint.find(Fp);
  if (It != ByFingerprint.end())
    return It->second;
  NetworkId Id = static_cast<NetworkId>(Entries.size());
  Entries.push_back({std::make_unique<Network>(std::move(Net)), Fp});
  ByFingerprint.emplace(Fp, Id);
  return Id;
}

std::optional<NetworkId>
NetworkRegistry::addFromFile(const std::string &Path) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = ByPath.find(Path);
    if (It != ByPath.end())
      return It->second;
  }
  // ONNX models register through the importer; the fingerprint is taken
  // over the lowered network, so a model and its exported .net twin dedupe
  // to the same entry.
  std::optional<Network> Net = onnx::isOnnxPath(Path)
                                   ? onnx::importModelFile(Path).Net
                                   : loadNetworkFile(Path);
  if (!Net)
    return std::nullopt;
  NetworkId Id = add(std::move(*Net));
  std::lock_guard<std::mutex> Lock(Mutex);
  ByPath.emplace(Path, Id);
  return Id;
}

const Network &NetworkRegistry::network(NetworkId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Id < Entries.size() && "unknown network id");
  return *Entries[Id].Net;
}

uint64_t NetworkRegistry::fingerprint(NetworkId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Id < Entries.size() && "unknown network id");
  return Entries[Id].Fingerprint;
}

size_t NetworkRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}
