# Empty compiler generated dependencies file for bench_micro_domains.
# This may be replaced when dependencies are built.
