//===- DataTests.cpp - Tests for the synthetic dataset generators -------------===//

#include "data/Acas.h"
#include "data/Benchmarks.h"
#include "data/SyntheticImages.h"

#include "nn/Builder.h"
#include "nn/Train.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace charon;

//===----------------------------------------------------------------------===//
// Synthetic images
//===----------------------------------------------------------------------===//

TEST(SyntheticImagesTest, DatasetShapeAndLabels) {
  ImageDatasetConfig C = mnistLikeConfig();
  C.SamplesPerClass = 5;
  Dataset D = makeImageDataset(C);
  EXPECT_EQ(D.size(), 50u);
  EXPECT_EQ(D.NumClasses, 10);
  for (size_t I = 0; I < D.size(); ++I) {
    EXPECT_EQ(D.Inputs[I].size(), static_cast<size_t>(C.Shape.size()));
    EXPECT_GE(D.Labels[I], 0);
    EXPECT_LT(D.Labels[I], 10);
  }
}

TEST(SyntheticImagesTest, PixelsInUnitRange) {
  Dataset D = makeImageDataset(cifarLikeConfig());
  for (const Vector &X : D.Inputs)
    for (size_t I = 0; I < X.size(); ++I) {
      EXPECT_GE(X[I], 0.0);
      EXPECT_LE(X[I], 1.0);
    }
}

TEST(SyntheticImagesTest, DeterministicForSeed) {
  ImageDatasetConfig C = mnistLikeConfig();
  C.SamplesPerClass = 3;
  Dataset A = makeImageDataset(C);
  Dataset B = makeImageDataset(C);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(approxEqual(A.Inputs[I], B.Inputs[I], 0.0));
}

TEST(SyntheticImagesTest, ClassesAreSeparated) {
  // Prototypes of distinct classes must differ substantially, otherwise the
  // dataset cannot be learned.
  ImageDatasetConfig C = mnistLikeConfig();
  Rng R(1);
  Vector A = makeImageSample(C, 0, R);
  Vector B = makeImageSample(C, 1, R);
  EXPECT_GT(distance2(A, B), 0.5);
}

TEST(SyntheticImagesTest, MlpTrainsToHighAccuracy) {
  // The whole evaluation hinges on the synthetic data being learnable.
  ImageDatasetConfig C = mnistLikeConfig();
  C.SamplesPerClass = 20;
  Dataset D = makeImageDataset(C);
  Rng R(2);
  Network Net = makeMlp(C.Shape.size(), {25, 25}, 10, R);
  TrainConfig TC;
  TC.Epochs = 30;
  double Acc = trainSgd(Net, D, TC, R);
  EXPECT_GT(Acc, 0.9);
}

//===----------------------------------------------------------------------===//
// ACAS-like dataset
//===----------------------------------------------------------------------===//

TEST(AcasTest, AdvisoryIsDeterministicPiecewise) {
  // Far-away encounters are clear-of-conflict.
  EXPECT_EQ(acasAdvisory(Vector{0.95, 0.5, 0.5, 0.5, 0.5}), 0);
  // Close, fast, head-on encounters demand strong maneuvers.
  int Advisory = acasAdvisory(Vector{0.05, 0.3, 0.5, 0.9, 0.9});
  EXPECT_TRUE(Advisory == 2 || Advisory == 4);
}

TEST(AcasTest, AllAdvisoriesReachable) {
  Rng R(3);
  Dataset D = makeAcasDataset(5000, R);
  std::vector<int> Counts(AcasOutputs, 0);
  for (int L : D.Labels)
    ++Counts[L];
  for (int A = 0; A < AcasOutputs; ++A)
    EXPECT_GT(Counts[A], 0) << "advisory " << A << " never produced";
}

TEST(AcasTest, NetworkLearnsAdvisories) {
  Rng R(4);
  Dataset D = makeAcasDataset(3000, R);
  Network Net = makeMlp(AcasInputs, {24, 24}, AcasOutputs, R);
  TrainConfig TC;
  TC.Epochs = 40;
  TC.LearningRate = 0.08;
  double Acc = trainSgd(Net, D, TC, R);
  EXPECT_GT(Acc, 0.85);
}

//===----------------------------------------------------------------------===//
// Brightening attacks (Sec. 7.1)
//===----------------------------------------------------------------------===//

TEST(BrighteningTest, OnlyBrightPixelsPerturbed) {
  Vector X{0.2, 0.7, 0.9, 0.4};
  Box I = brighteningRegion(X, 0.6);
  // Dim pixels stay fixed.
  EXPECT_DOUBLE_EQ(I.lower()[0], 0.2);
  EXPECT_DOUBLE_EQ(I.upper()[0], 0.2);
  EXPECT_DOUBLE_EQ(I.lower()[3], 0.4);
  EXPECT_DOUBLE_EQ(I.upper()[3], 0.4);
  // Bright pixels may brighten to 1.
  EXPECT_DOUBLE_EQ(I.lower()[1], 0.7);
  EXPECT_DOUBLE_EQ(I.upper()[1], 1.0);
  EXPECT_DOUBLE_EQ(I.upper()[2], 1.0);
}

TEST(BrighteningTest, OriginalImageIsInRegion) {
  Rng R(5);
  ImageDatasetConfig C = mnistLikeConfig();
  Vector X = makeImageSample(C, 3, R);
  Box I = brighteningRegion(X, 0.5);
  EXPECT_TRUE(I.contains(X));
}

TEST(BrighteningTest, ThresholdOneIsPointRegion) {
  Vector X{0.3, 0.99};
  Box I = brighteningRegion(X, 1.01);
  EXPECT_DOUBLE_EQ(I.diameter(), 0.0);
}

//===----------------------------------------------------------------------===//
// Benchmark suites
//===----------------------------------------------------------------------===//

TEST(BenchmarkSuiteTest, PaperSuiteConfigsCoverSevenNetworks) {
  auto Configs = paperSuiteConfigs(10);
  ASSERT_EQ(Configs.size(), 7u);
  int ConvCount = 0;
  for (const auto &C : Configs) {
    EXPECT_EQ(C.NumProperties, 10);
    if (C.HiddenSizes.empty())
      ++ConvCount;
  }
  EXPECT_EQ(ConvCount, 1); // exactly one convolutional network
}

TEST(BenchmarkSuiteTest, AcasSuiteBuildsTrainedNetwork) {
  BenchmarkSuite Suite = makeAcasSuite(12, 99, "/tmp/charon-test-networks");
  EXPECT_EQ(Suite.Net.inputSize(), static_cast<size_t>(AcasInputs));
  EXPECT_EQ(Suite.Net.outputSize(), static_cast<size_t>(AcasOutputs));
  ASSERT_EQ(Suite.Properties.size(), 12u);
  for (const auto &P : Suite.Properties) {
    EXPECT_EQ(P.Region.dim(), static_cast<size_t>(AcasInputs));
    EXPECT_LT(P.TargetClass, static_cast<size_t>(AcasOutputs));
    // The region center is classified as the target class by construction.
    EXPECT_EQ(Suite.Net.classify(P.Region.center()), P.TargetClass);
  }
}

TEST(BenchmarkSuiteTest, NetworkCachingRoundTrips) {
  // Building the same suite twice must load identical weights from cache.
  BenchmarkSuite A = makeAcasSuite(2, 99, "/tmp/charon-test-networks");
  BenchmarkSuite B = makeAcasSuite(2, 99, "/tmp/charon-test-networks");
  Vector X{0.5, 0.5, 0.5, 0.5, 0.5};
  EXPECT_TRUE(approxEqual(A.Net.evaluate(X), B.Net.evaluate(X), 1e-12));
}

TEST(BenchmarkSuiteTest, ImageSuiteSmall) {
  SuiteConfig C;
  C.Name = "test_tiny";
  C.Data = mnistLikeConfig();
  C.Data.SamplesPerClass = 10;
  C.HiddenSizes = {12};
  C.NumProperties = 5;
  C.TrainEpochs = 10;
  C.CacheDir = "/tmp/charon-test-networks";
  BenchmarkSuite Suite = makeImageSuite(C);
  EXPECT_EQ(Suite.Properties.size(), 5u);
  for (const auto &P : Suite.Properties)
    EXPECT_EQ(P.Region.dim(), Suite.Net.inputSize());
}
