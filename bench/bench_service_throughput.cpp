//===- bench_service_throughput.cpp - Service scaling + cache speedup ---------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// The service layer's two scaling claims, measured on the ACAS suite:
//
//  1. Worker scaling: independent jobs are embarrassingly parallel (the
//     Sec. 6 observation applied across properties instead of within one),
//     so jobs/sec should grow with the worker count.
//  2. Cache speedup: re-deciding an identical batch is answered from the
//     result cache with identical verdicts at a fraction of the cost.
//
// Budgets follow the harness conventions (CHARON_BENCH_BUDGET /
// CHARON_BENCH_PROPS env overrides).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "service/VerificationService.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

using namespace charon;
using namespace charon::bench;

namespace {

std::vector<JobRequest> makeJobs(NetworkId Net, const BenchmarkSuite &Suite,
                                 double BudgetSeconds) {
  std::vector<JobRequest> Jobs;
  for (const RobustnessProperty &Prop : Suite.Properties) {
    JobRequest Job;
    Job.Net = Net;
    Job.Prop = Prop;
    Job.Config.TimeLimitSeconds = BudgetSeconds;
    Jobs.push_back(std::move(Job));
  }
  return Jobs;
}

} // namespace

int main() {
  HarnessConfig Config = defaultHarnessConfig();
  VerificationPolicy Policy = loadOrDefaultPolicy(Config);
  int NumProps = std::max(12, 3 * Config.PropertiesPerSuite);
  BenchmarkSuite Suite = makeAcasSuite(NumProps, 99, "networks");

  std::printf("== Verification service throughput (ACAS suite) ==\n");
  std::printf("(%d jobs, budget %.1fs/job, %u hardware threads)\n\n", NumProps,
              Config.BudgetSeconds, std::thread::hardware_concurrency());

  // -- 1. Worker scaling, cache off so every job really executes. --------
  std::printf("%-10s %-14s %-12s %s\n", "workers", "wall-seconds", "jobs/sec",
              "speedup");
  double Baseline = 0.0;
  std::vector<int> BaseVerdicts;
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    ServiceConfig SC;
    SC.Workers = Workers;
    SC.EnableCache = false;
    VerificationService Service(Policy, SC);
    NetworkId Net = Service.registry().add(Suite.Net.clone());
    BatchReport Report =
        Service.runBatch(makeJobs(Net, Suite, Config.BudgetSeconds));
    if (Workers == 1) {
      Baseline = Report.WallSeconds;
      for (const JobOutcome &Out : Report.Outcomes)
        BaseVerdicts.push_back(static_cast<int>(Out.Result.Result));
    } else {
      // Scheduling must never change verdicts.
      for (size_t I = 0; I < Report.Outcomes.size(); ++I)
        if (static_cast<int>(Report.Outcomes[I].Result.Result) !=
            BaseVerdicts[I])
          std::printf("  WARNING: verdict drift on job %zu at %u workers\n", I,
                      Workers);
    }
    std::printf("%-10u %-14.3f %-12.1f %.2fx\n", Workers, Report.WallSeconds,
                Report.jobsPerSecond(),
                Baseline > 0.0 ? Baseline / Report.WallSeconds : 1.0);
  }

  // -- 2. Cache speedup: identical batch twice. --------------------------
  std::printf("\n%-10s %-14s %-12s %s\n", "batch", "wall-seconds", "jobs/sec",
              "cache-hits");
  ServiceConfig SC;
  SC.Workers = 4;
  VerificationService Service(Policy, SC);
  NetworkId Net = Service.registry().add(Suite.Net.clone());
  std::vector<JobRequest> Jobs = makeJobs(Net, Suite, Config.BudgetSeconds);

  BatchReport Cold = Service.runBatch(Jobs);
  BatchReport Warm = Service.runBatch(Jobs);
  std::printf("%-10s %-14.3f %-12.1f %d/%zu\n", "cold", Cold.WallSeconds,
              Cold.jobsPerSecond(), Cold.CacheHits, Cold.Outcomes.size());
  std::printf("%-10s %-14.3f %-12.1f %d/%zu\n", "warm", Warm.WallSeconds,
              Warm.jobsPerSecond(), Warm.CacheHits, Warm.Outcomes.size());

  // A cold Timeout may legitimately become a decided warm verdict: the
  // service resumes cached Timeout checkpoints (ServiceConfig::
  // ResumeTimeouts), spending a fresh budget on the saved frontier. Any
  // other verdict change is a soundness bug.
  bool VerdictsMatch = true;
  int ResumedDecided = 0;
  for (size_t I = 0; I < Cold.Outcomes.size(); ++I) {
    Outcome C = Cold.Outcomes[I].Result.Result;
    Outcome W = Warm.Outcomes[I].Result.Result;
    if (C == W)
      continue;
    if (C == Outcome::Timeout && Warm.Outcomes[I].Resumed)
      ++ResumedDecided;
    else
      VerdictsMatch = false;
  }
  double Speedup =
      Warm.WallSeconds > 0.0 ? Cold.WallSeconds / Warm.WallSeconds : 0.0;
  std::printf("\ncache speedup %.1fx, verdicts %s", Speedup,
              VerdictsMatch ? "identical" : "DIFFER (bug!)");
  if (ResumedDecided > 0)
    std::printf(" (%d cold timeouts resumed to a verdict)", ResumedDecided);
  std::printf("\n");

  CacheStats CS = Service.cache().stats();
  std::printf("cache: %ld exact hits, %ld subsumption hits, %ld misses, "
              "%ld evictions\n",
              CS.ExactHits, CS.SubsumptionHits, CS.Misses, CS.Evictions);
  return VerdictsMatch ? 0 : 1;
}
