//===- LinalgTests.cpp - Tests for the linear algebra library ----------------===//

#include "linalg/Box.h"
#include "linalg/Cholesky.h"
#include "linalg/Matrix.h"
#include "linalg/Vector.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace charon;

//===----------------------------------------------------------------------===//
// Vector
//===----------------------------------------------------------------------===//

TEST(VectorTest, ConstructionAndIndexing) {
  Vector V{1.0, 2.0, 3.0};
  EXPECT_EQ(V.size(), 3u);
  EXPECT_DOUBLE_EQ(V[0], 1.0);
  EXPECT_DOUBLE_EQ(V[2], 3.0);
  Vector Z(4);
  EXPECT_EQ(Z.size(), 4u);
  EXPECT_DOUBLE_EQ(Z[3], 0.0);
}

TEST(VectorTest, Arithmetic) {
  Vector A{1.0, 2.0};
  Vector B{3.0, -1.0};
  Vector Sum = A + B;
  EXPECT_DOUBLE_EQ(Sum[0], 4.0);
  EXPECT_DOUBLE_EQ(Sum[1], 1.0);
  Vector Diff = A - B;
  EXPECT_DOUBLE_EQ(Diff[0], -2.0);
  Vector Scaled = 2.0 * A;
  EXPECT_DOUBLE_EQ(Scaled[1], 4.0);
}

TEST(VectorTest, DotAndNorms) {
  Vector A{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(A, A), 25.0);
  EXPECT_DOUBLE_EQ(norm2(A), 5.0);
  EXPECT_DOUBLE_EQ(normInf(A), 4.0);
  Vector B{0.0, 0.0};
  EXPECT_DOUBLE_EQ(distance2(A, B), 5.0);
}

TEST(VectorTest, Axpy) {
  Vector X{1.0, 2.0};
  Vector Y{10.0, 20.0};
  axpy(3.0, X, Y);
  EXPECT_DOUBLE_EQ(Y[0], 13.0);
  EXPECT_DOUBLE_EQ(Y[1], 26.0);
}

TEST(VectorTest, ArgmaxBreaksTiesLow) {
  Vector V{1.0, 5.0, 5.0, 2.0};
  EXPECT_EQ(argmax(V), 1u);
}

TEST(VectorTest, Clamp) {
  Vector X{-1.0, 0.5, 3.0};
  Vector Lo{0.0, 0.0, 0.0};
  Vector Hi{1.0, 1.0, 1.0};
  Vector C = clamp(X, Lo, Hi);
  EXPECT_DOUBLE_EQ(C[0], 0.0);
  EXPECT_DOUBLE_EQ(C[1], 0.5);
  EXPECT_DOUBLE_EQ(C[2], 1.0);
}

TEST(VectorTest, ApproxEqual) {
  EXPECT_TRUE(approxEqual(Vector{1.0, 2.0}, Vector{1.0 + 1e-10, 2.0}, 1e-9));
  EXPECT_FALSE(approxEqual(Vector{1.0}, Vector{1.1}, 1e-3));
  EXPECT_FALSE(approxEqual(Vector{1.0}, Vector{1.0, 2.0}, 1.0));
}

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, InitializerAndIdentity) {
  Matrix M{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 2u);
  EXPECT_DOUBLE_EQ(M(1, 0), 3.0);
  Matrix I = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(I(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(I(0, 1), 0.0);
}

TEST(MatrixTest, MatVec) {
  Matrix M{{1.0, 2.0}, {3.0, 4.0}};
  Vector X{1.0, 1.0};
  Vector Y = matVec(M, X);
  EXPECT_DOUBLE_EQ(Y[0], 3.0);
  EXPECT_DOUBLE_EQ(Y[1], 7.0);
}

TEST(MatrixTest, MatTVecMatchesExplicitTranspose) {
  Rng R(3);
  Matrix M(4, 6);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 6; ++J)
      M(I, J) = R.gaussian();
  Vector X(4);
  for (size_t I = 0; I < 4; ++I)
    X[I] = R.gaussian();
  Vector A = matTVec(M, X);
  Vector B = matVec(M.transposed(), X);
  EXPECT_TRUE(approxEqual(A, B, 1e-12));
}

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix A{{1.0, 2.0}, {3.0, 4.0}};
  Matrix B{{0.0, 1.0}, {1.0, 0.0}};
  Matrix C = matMul(A, B);
  EXPECT_DOUBLE_EQ(C(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(C(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(C(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(C(1, 1), 3.0);
}

TEST(MatrixTest, MatMulIdentity) {
  Rng R(5);
  Matrix M(3, 3);
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = 0; J < 3; ++J)
      M(I, J) = R.gaussian();
  EXPECT_TRUE(approxEqual(matMul(M, Matrix::identity(3)), M, 1e-12));
  EXPECT_TRUE(approxEqual(matMul(Matrix::identity(3), M), M, 1e-12));
}

//===----------------------------------------------------------------------===//
// Cholesky
//===----------------------------------------------------------------------===//

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = L L^T for a hand-built SPD matrix.
  Matrix A{{4.0, 2.0, 0.0}, {2.0, 5.0, 1.0}, {0.0, 1.0, 3.0}};
  Cholesky F(A);
  ASSERT_TRUE(F.isValid());
  Vector B{2.0, 1.0, 4.0};
  Vector X = F.solve(B);
  Vector Ax = matVec(A, X);
  EXPECT_TRUE(approxEqual(Ax, B, 1e-10));
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix A{{1.0, 2.0}, {2.0, 1.0}}; // eigenvalues 3, -1
  Cholesky F(A);
  EXPECT_FALSE(F.isValid());
}

TEST(CholeskyTest, LogDetOfIdentityIsZero) {
  Cholesky F(Matrix::identity(5));
  ASSERT_TRUE(F.isValid());
  EXPECT_NEAR(F.logDiagSum(), 0.0, 1e-12);
}

TEST(CholeskyTest, RandomSpdRoundTrip) {
  Rng R(7);
  // Build SPD as M^T M + n I.
  size_t N = 8;
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      M(I, J) = R.gaussian();
  Matrix A = matMul(M.transposed(), M);
  for (size_t I = 0; I < N; ++I)
    A(I, I) += static_cast<double>(N);
  Cholesky F(A);
  ASSERT_TRUE(F.isValid());
  Vector B(N);
  for (size_t I = 0; I < N; ++I)
    B[I] = R.gaussian();
  EXPECT_TRUE(approxEqual(matVec(A, F.solve(B)), B, 1e-8));
}

//===----------------------------------------------------------------------===//
// Box
//===----------------------------------------------------------------------===//

TEST(BoxTest, CenterWidthDiameter) {
  Box B(Vector{0.0, -1.0}, Vector{2.0, 1.0});
  Vector C = B.center();
  EXPECT_DOUBLE_EQ(C[0], 1.0);
  EXPECT_DOUBLE_EQ(C[1], 0.0);
  EXPECT_DOUBLE_EQ(B.width(0), 2.0);
  EXPECT_DOUBLE_EQ(B.diameter(), std::sqrt(8.0));
}

TEST(BoxTest, UniformAndLinfBall) {
  Box U = Box::uniform(3, -1.0, 1.0);
  EXPECT_EQ(U.dim(), 3u);
  EXPECT_DOUBLE_EQ(U.lower()[2], -1.0);

  Box Ball = Box::linfBall(Vector{0.9, 0.5}, 0.2, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(Ball.upper()[0], 1.0); // clipped
  EXPECT_DOUBLE_EQ(Ball.lower()[0], 0.7);
  EXPECT_DOUBLE_EQ(Ball.lower()[1], 0.3);
}

TEST(BoxTest, ContainsAndProject) {
  Box B(Vector{0.0, 0.0}, Vector{1.0, 1.0});
  EXPECT_TRUE(B.contains(Vector{0.5, 0.5}));
  EXPECT_FALSE(B.contains(Vector{1.5, 0.5}));
  Vector P = B.project(Vector{2.0, -1.0});
  EXPECT_DOUBLE_EQ(P[0], 1.0);
  EXPECT_DOUBLE_EQ(P[1], 0.0);
  EXPECT_TRUE(B.contains(P));
}

TEST(BoxTest, LongestDim) {
  Box B(Vector{0.0, 0.0, 0.0}, Vector{1.0, 3.0, 2.0});
  EXPECT_EQ(B.longestDim(), 1u);
}

TEST(BoxTest, SplitCoversAndShrinks) {
  Box B(Vector{0.0, 0.0}, Vector{1.0, 1.0});
  auto [Lo, Hi] = B.split(0, 0.25);
  // Halves share the cut plane and cover the region.
  EXPECT_DOUBLE_EQ(Lo.upper()[0], Hi.lower()[0]);
  EXPECT_DOUBLE_EQ(Lo.lower()[0], 0.0);
  EXPECT_DOUBLE_EQ(Hi.upper()[0], 1.0);
  // Assumption 1: both children strictly smaller in diameter.
  EXPECT_LT(Lo.diameter(), B.diameter());
  EXPECT_LT(Hi.diameter(), B.diameter());
}

TEST(BoxTest, SplitNudgesBoundaryCut) {
  Box B(Vector{0.0}, Vector{1.0});
  // A cut at (or beyond) the boundary must be pulled strictly inside so
  // both halves are nonempty (Assumption 1 of the paper).
  auto [Lo, Hi] = B.split(0, 0.0);
  EXPECT_GT(Lo.width(0), 0.0);
  EXPECT_GT(Hi.width(0), 0.0);
  auto [Lo2, Hi2] = B.split(0, 5.0);
  EXPECT_GT(Lo2.width(0), 0.0);
  EXPECT_GT(Hi2.width(0), 0.0);
}

TEST(BoxTest, SampleStaysInside) {
  Rng R(11);
  Box B(Vector{-2.0, 3.0}, Vector{-1.0, 7.0});
  for (int I = 0; I < 200; ++I)
    EXPECT_TRUE(B.contains(B.sample(R)));
}

TEST(BoxTest, SplitPreservesUnionUnderSampling) {
  Rng R(13);
  Box B(Vector{0.0, 0.0}, Vector{1.0, 2.0});
  auto [Lo, Hi] = B.split(1, 0.8);
  for (int I = 0; I < 500; ++I) {
    Vector X = B.sample(R);
    EXPECT_TRUE(Lo.contains(X, 1e-12) || Hi.contains(X, 1e-12));
  }
}
