//===- OnnxBuilder.h - Assemble ONNX model bytes ----------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny writer for the same ONNX protobuf subset OnnxProto.h reads. It
/// exists so tests and the CI smoke leg can assemble deterministic model
/// files without a protobuf dependency: fixture bytes are a pure function
/// of the builder calls, so checked-in fixtures and freshly generated ones
/// are byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_ONNX_ONNXBUILDER_H
#define CHARON_ONNX_ONNXBUILDER_H

#include <cstdint>
#include <string>
#include <vector>

namespace charon {
namespace onnx {

/// Incrementally assembles a serialized ModelProto. Nodes, initializers,
/// and graph inputs/outputs are emitted in call order.
class ModelBuilder {
public:
  /// Adds a float initializer tensor (weights), stored as raw_data.
  void addInitializer(const std::string &Name,
                      const std::vector<int64_t> &Dims,
                      const std::vector<double> &Values);

  /// Adds an int64 initializer tensor (e.g. a Reshape shape operand).
  void addInt64Initializer(const std::string &Name,
                           const std::vector<int64_t> &Dims,
                           const std::vector<int64_t> &Values);

  /// Declares the graph input with a static float tensor shape.
  void setInput(const std::string &Name, const std::vector<int64_t> &Dims);

  /// Declares the graph output.
  void setOutput(const std::string &Name, const std::vector<int64_t> &Dims);

  /// Node attribute payload (single scalar, ints list, or floats list).
  struct Attr {
    std::string Name;
    enum class Kind { Int, Float, Ints, Floats } K;
    int64_t I = 0;
    double F = 0.0;
    std::vector<int64_t> Ints;
    std::vector<double> Floats;

    static Attr ofInt(const std::string &N, int64_t V);
    static Attr ofFloat(const std::string &N, double V);
    static Attr ofInts(const std::string &N, std::vector<int64_t> V);
  };

  /// Adds a node. Attribute order is preserved.
  void addNode(const std::string &OpType,
               const std::vector<std::string> &Inputs,
               const std::vector<std::string> &Outputs,
               const std::vector<Attr> &Attrs = {},
               const std::string &NodeName = "");

  /// Serializes the accumulated graph into ModelProto bytes.
  std::vector<unsigned char> finish(const std::string &GraphName = "g") const;

private:
  std::vector<unsigned char> NodeBytes;
  std::vector<unsigned char> InitializerBytes;
  std::vector<unsigned char> InputBytes;
  std::vector<unsigned char> OutputBytes;
};

/// Writes model bytes to a file. Returns false on I/O failure.
bool writeModelFile(const std::vector<unsigned char> &Bytes,
                    const std::string &Path);

} // namespace onnx
} // namespace charon

#endif // CHARON_ONNX_ONNXBUILDER_H
