//===- ReluVal.h - ReluVal baseline (symbolic intervals) ----------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ReluVal baseline (Wang et al., USENIX Security'18), the paper's
/// closest prior work (Sec. 7.2/7.4): symbolic interval propagation plus a
/// *static, hand-crafted* refinement strategy — bisect the input dimension
/// with the largest smear (output influence x input width). Unlike Charon
/// it has no learned policy and no gradient-based counterexample search;
/// it can only refute when a concretely evaluated probe point (the region
/// center) violates the property, which in practice almost never fires —
/// matching the paper's observation that ReluVal falsifies none of the
/// falsifiable benchmarks (Sec. 7.3).
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_BASELINES_RELUVAL_H
#define CHARON_BASELINES_RELUVAL_H

#include "core/Property.h"
#include "core/Verifier.h"
#include "nn/Network.h"

namespace charon {

/// ReluVal settings.
struct ReluValConfig {
  double TimeLimitSeconds = -1.0;
  int MaxDepth = 60; ///< bisection depth cap (beyond budget = timeout)
};

/// Result of a ReluVal run (reuses the shared Outcome enum; Counterexample
/// is only populated on the rare concrete-probe falsification).
struct ReluValResult {
  Outcome Result = Outcome::Timeout;
  Vector Counterexample;
  long AnalyzeCalls = 0;
  long Splits = 0;
  double Seconds = 0.0;
};

/// Runs ReluVal's iterative-refinement verification on the property.
ReluValResult reluvalVerify(const Network &Net, const RobustnessProperty &Prop,
                            const ReluValConfig &Config);

} // namespace charon

#endif // CHARON_BASELINES_RELUVAL_H
