//===- OptTests.cpp - Tests for the optimization library ----------------------===//

#include "opt/BayesOpt.h"
#include "opt/GaussianProcess.h"
#include "opt/Pgd.h"

#include "nn/Builder.h"
#include "nn/Dense.h"
#include "nn/Relu.h"
#include "support/Random.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace charon;

namespace {


} // namespace

//===----------------------------------------------------------------------===//
// PGD
//===----------------------------------------------------------------------===//

TEST(PgdTest, FindsCounterexampleWhenRegionCrossesBoundary) {
  // XOR network: region straddling the decision boundary around (0.5, 0.5)
  // contains points of both classes, so PGD must find a violation of
  // "everything is class 1".
  Network Net = testing_nets::makeXorNetwork();
  Box Region = Box::uniform(2, 0.1, 0.9);
  Rng R(3);
  PgdConfig Config;
  Config.Restarts = 5;
  PgdResult Result = pgdMinimize(Net, Region, 1, Config, R);
  EXPECT_LE(Result.Objective, 0.0);
  EXPECT_TRUE(Region.contains(Result.X, 1e-9));
  // The witness must be a true counterexample.
  EXPECT_NE(Net.classify(Result.X), 1u);
}

TEST(PgdTest, NoCounterexampleOnRobustRegion) {
  // Example 3.1's region [0.3, 0.7]^2 is robust for class 1; PGD must
  // return a positive objective (and, per delta-completeness, never a
  // spurious witness).
  Network Net = testing_nets::makeXorNetwork();
  Box Region = Box::uniform(2, 0.3, 0.7);
  Rng R(5);
  PgdConfig Config;
  Config.Restarts = 6;
  Config.Steps = 60;
  PgdResult Result = pgdMinimize(Net, Region, 1, Config, R);
  EXPECT_GT(Result.Objective, 0.0);
}

TEST(PgdTest, ResultAlwaysInsideRegion) {
  Rng NetRng(7);
  Network Net = makeMlp(4, {8}, 3, NetRng);
  Rng R(8);
  for (int T = 0; T < 5; ++T) {
    Vector Center(4);
    for (size_t I = 0; I < 4; ++I)
      Center[I] = R.uniform(-1.0, 1.0);
    Box Region = Box::linfBall(Center, 0.2, -2.0, 2.0);
    PgdResult Result = pgdMinimize(Net, Region, 0, PgdConfig(), R);
    EXPECT_TRUE(Region.contains(Result.X, 1e-9));
    // Reported objective matches a fresh evaluation at the witness.
    EXPECT_NEAR(Result.Objective, Net.objective(Result.X, 0), 1e-12);
  }
}

TEST(PgdTest, BeatsCenterObjective) {
  // PGD only ever improves on its starting point.
  Rng NetRng(9);
  Network Net = makeMlp(3, {10, 10}, 4, NetRng);
  Rng R(10);
  Box Region = Box::uniform(3, -0.5, 0.5);
  PgdResult Result = pgdMinimize(Net, Region, 2, PgdConfig(), R);
  EXPECT_LE(Result.Objective, Net.objective(Region.center(), 2) + 1e-12);
}

TEST(FgsmTest, StaysInRegionAndImprovesOrMatchesCenter) {
  Network Net = testing_nets::makeXorNetwork();
  Box Region = Box::uniform(2, 0.1, 0.9);
  PgdResult Result = fgsmMinimize(Net, Region, 1);
  EXPECT_TRUE(Region.contains(Result.X, 1e-9));
}

TEST(PgdTest, ZeroWidthRegionReturnsThePoint) {
  Network Net = testing_nets::makeXorNetwork();
  Vector P{0.4, 0.6};
  Box Region(P, P);
  Rng R(11);
  PgdResult Result = pgdMinimize(Net, Region, 1, PgdConfig(), R);
  EXPECT_TRUE(approxEqual(Result.X, P, 1e-12));
}

//===----------------------------------------------------------------------===//
// Gaussian process
//===----------------------------------------------------------------------===//

TEST(GpTest, InterpolatesTrainingPoints) {
  GpConfig C;
  C.NoiseVariance = 1e-8;
  GaussianProcess Gp(C);
  std::vector<Vector> Xs{Vector{0.0}, Vector{1.0}, Vector{2.0}};
  Vector Ys{0.0, 1.0, 0.0};
  ASSERT_TRUE(Gp.fit(Xs, Ys));
  for (size_t I = 0; I < Xs.size(); ++I) {
    GpPrediction P = Gp.predict(Xs[I]);
    EXPECT_NEAR(P.Mean, Ys[I], 1e-3);
    EXPECT_LT(P.Variance, 1e-3);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess Gp;
  ASSERT_TRUE(Gp.fit({Vector{0.0}}, Vector{1.0}));
  GpPrediction Near = Gp.predict(Vector{0.1});
  GpPrediction Far = Gp.predict(Vector{5.0});
  EXPECT_LT(Near.Variance, Far.Variance);
}

TEST(GpTest, KernelIsSymmetricAndPeaked) {
  GaussianProcess Gp;
  Vector A{0.0, 0.0}, B{1.0, 1.0};
  EXPECT_DOUBLE_EQ(Gp.kernel(A, B), Gp.kernel(B, A));
  EXPECT_GT(Gp.kernel(A, A), Gp.kernel(A, B));
}

TEST(GpTest, SurvivesDuplicateInputs) {
  GaussianProcess Gp;
  // Duplicate rows make the kernel singular without jitter escalation.
  EXPECT_TRUE(
      Gp.fit({Vector{1.0}, Vector{1.0}, Vector{2.0}}, Vector{1.0, 1.0, 3.0}));
}

//===----------------------------------------------------------------------===//
// Expected improvement
//===----------------------------------------------------------------------===//

TEST(EiTest, ZeroWhenCertainAndWorse) {
  EXPECT_DOUBLE_EQ(expectedImprovement(0.0, 0.0, 1.0, 0.0), 0.0);
}

TEST(EiTest, PositiveWhenCertainAndBetter) {
  EXPECT_NEAR(expectedImprovement(2.0, 0.0, 1.0, 0.0), 1.0, 1e-12);
}

TEST(EiTest, UncertaintyCreatesValue) {
  // Same mean as incumbent: EI is positive only through variance.
  double Certain = expectedImprovement(1.0, 0.0, 1.0, 0.0);
  double Uncertain = expectedImprovement(1.0, 1.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(Certain, 0.0);
  EXPECT_GT(Uncertain, 0.0);
}

TEST(EiTest, MonotoneInMean) {
  EXPECT_GT(expectedImprovement(2.0, 0.5, 1.0, 0.0),
            expectedImprovement(1.5, 0.5, 1.0, 0.0));
}

//===----------------------------------------------------------------------===//
// Bayesian optimization
//===----------------------------------------------------------------------===//

TEST(BayesOptTest, MaximizesSmoothFunction) {
  // max of -(x - 0.3)^2 on [-1, 1] is at 0.3.
  auto Objective = [](const Vector &X) {
    return -(X[0] - 0.3) * (X[0] - 0.3);
  };
  Rng R(13);
  BayesOptConfig C;
  C.InitialSamples = 6;
  C.Iterations = 30;
  BayesOptResult Result =
      bayesOptimize(Objective, Box::uniform(1, -1.0, 1.0), C, R);
  EXPECT_NEAR(Result.BestX[0], 0.3, 0.1);
  EXPECT_GT(Result.BestY, -0.01);
}

TEST(BayesOptTest, BeatsPureRandomOnAverage) {
  // On a 2-d multimodal function, GP-guided search should match or beat
  // random sampling with the same budget.
  auto Objective = [](const Vector &X) {
    return std::sin(3.0 * X[0]) * std::cos(2.0 * X[1]) -
           0.2 * (X[0] * X[0] + X[1] * X[1]);
  };
  Box Domain = Box::uniform(2, -2.0, 2.0);

  Rng BoRng(15);
  BayesOptConfig C;
  C.InitialSamples = 8;
  C.Iterations = 24;
  BayesOptResult Bo = bayesOptimize(Objective, Domain, C, BoRng);

  Rng RandRng(16);
  double RandomBest = -1e18;
  for (int I = 0; I < 32; ++I)
    RandomBest = std::max(RandomBest, Objective(Domain.sample(RandRng)));

  EXPECT_GE(Bo.BestY, RandomBest - 0.15);
}

TEST(BayesOptTest, HistoryMatchesBudgetAndContainsBest) {
  auto Objective = [](const Vector &X) { return -std::fabs(X[0]); };
  Rng R(17);
  BayesOptConfig C;
  C.InitialSamples = 4;
  C.Iterations = 6;
  BayesOptResult Result =
      bayesOptimize(Objective, Box::uniform(1, -1.0, 1.0), C, R);
  EXPECT_EQ(Result.History.size(), 10u);
  double BestInHistory = -1e18;
  for (const auto &S : Result.History)
    BestInHistory = std::max(BestInHistory, S.Y);
  EXPECT_DOUBLE_EQ(Result.BestY, BestInHistory);
}

TEST(BayesOptTest, DeterministicForSameSeed) {
  auto Objective = [](const Vector &X) { return -X[0] * X[0]; };
  Box Domain = Box::uniform(1, -1.0, 1.0);
  BayesOptConfig C;
  C.InitialSamples = 4;
  C.Iterations = 8;
  Rng R1(19), R2(19);
  BayesOptResult A = bayesOptimize(Objective, Domain, C, R1);
  BayesOptResult B = bayesOptimize(Objective, Domain, C, R2);
  EXPECT_DOUBLE_EQ(A.BestY, B.BestY);
  EXPECT_TRUE(approxEqual(A.BestX, B.BestX, 0.0));
}
