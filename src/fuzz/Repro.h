//===- Repro.h - Self-contained replayable fuzz repro files ------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When a campaign case trips an oracle, the fuzzer persists everything
/// needed to re-run that exact case: the campaign seed and case index (which
/// determine every random draw the oracles make), the network spec (which
/// rebuilds bit-identical weights), the property, and the oracle knobs.
/// Replaying a repro is then fully deterministic — no timing, no global
/// state, no dependence on the rest of the campaign.
///
/// Text format (line-oriented, whitespace-separated; `message` consumes the
/// rest of its line):
/// \code
///   charon-fuzz-repro 1
///   campaign-seed <u64>
///   case <index>
///   expect violation|clean
///   oracle <token>
///   message <free text>
///   samples <n>  subregions <n>  tolerance <d>  delta <d>
///   budget <d>  verifier-seed <u64>  inject <d>
///   domains <n> <name> <disjuncts> ...
///   network mlp|conv <numbers...>
///   charon-property 1 ...            (PropertyIo block)
/// \endcode
///
/// `expect` records the replay expectation: `violation` for a finding that
/// must reproduce (fresh findings, and injected-fault entries that prove
/// the oracles stay able to catch bugs), `clean` for a regression entry — a
/// case that once failed, whose fix must keep it passing. The checked-in
/// corpus under tests/fuzz/corpus/ holds both kinds.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_FUZZ_REPRO_H
#define CHARON_FUZZ_REPRO_H

#include "abstract/Analyzer.h"
#include "fuzz/Oracles.h"
#include "fuzz/RandomNetwork.h"

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace charon {

/// A self-contained fuzz case: everything a replay needs.
struct FuzzRepro {
  uint64_t CampaignSeed = 0;
  long CaseIndex = 0;
  /// Replay expectation: true = the violation must reproduce (fresh
  /// finding), false = the case must stay clean (regression corpus).
  bool ExpectViolation = true;
  std::string Oracle;  ///< oracle that fired at discovery time
  std::string Message; ///< detail captured at discovery time
  OracleConfig Cfg;
  std::vector<DomainSpec> Domains;
  NetworkSpec Net;
  RobustnessProperty Prop;
};

/// Writes \p Repro in the documented text format.
void saveRepro(const FuzzRepro &Repro, std::ostream &Os);

/// Parses a repro; nullopt on malformed input (bad magic, bad shapes,
/// truncated data, property/network dimension mismatch).
std::optional<FuzzRepro> loadRepro(std::istream &Is);

/// File-path convenience wrappers.
bool saveReproFile(const FuzzRepro &Repro, const std::string &Path);
std::optional<FuzzRepro> loadReproFile(const std::string &Path);

/// Outcome of re-running a repro's case.
struct ReplayResult {
  /// True when some oracle fired during the replay.
  bool ViolationReproduced = false;
  /// True when the replay matched the repro's expectation (`violation`
  /// entries reproduced, `clean` entries stayed clean).
  bool MatchesExpectation = false;
  std::vector<OracleViolation> Violations;
};

/// Deterministically re-runs the case described by \p Repro through the
/// full oracle set and reports what fired.
ReplayResult replayRepro(const FuzzRepro &Repro);

} // namespace charon

#endif // CHARON_FUZZ_REPRO_H
