//===- Conv2D.cpp - 2-D convolution layer ----------------------------------===//

#include "nn/Conv2D.h"

#include "linalg/Kernels.h"
#include "support/Random.h"

#include <cmath>

using namespace charon;

static TensorShape convOutputShape(const TensorShape &In, int OutChannels,
                                   int KH, int KW, int S, int P) {
  TensorShape Out;
  Out.Channels = OutChannels;
  Out.Height = (In.Height + 2 * P - KH) / S + 1;
  Out.Width = (In.Width + 2 * P - KW) / S + 1;
  assert(Out.Height > 0 && Out.Width > 0 && "convolution output is empty");
  return Out;
}

Conv2DLayer::Conv2DLayer(TensorShape In, int OutChannels, int KernelH,
                         int KernelW, int Stride, int Pad)
    : InShape(In),
      OutShape(convOutputShape(In, OutChannels, KernelH, KernelW, Stride, Pad)),
      KH(KernelH), KW(KernelW), S(Stride), P(Pad),
      Kernels(static_cast<size_t>(OutChannels) * In.Channels * KernelH *
              KernelW),
      B(static_cast<size_t>(OutChannels)),
      GradKernels(Kernels.size()), GradB(B.size()) {}

void Conv2DLayer::initHe(Rng &R) {
  double FanIn = static_cast<double>(InShape.Channels) * KH * KW;
  double Scale = std::sqrt(2.0 / FanIn);
  for (double &K : Kernels)
    K = R.gaussian(0.0, Scale);
  B.fill(0.0);
  Lowered.reset();
}

Vector Conv2DLayer::forward(const Vector &Input) const {
  assert(Input.size() == static_cast<size_t>(InShape.size()) &&
         "conv input size mismatch");
  Vector Out(OutShape.size());
  for (int Oc = 0; Oc < OutShape.Channels; ++Oc) {
    for (int Oy = 0; Oy < OutShape.Height; ++Oy) {
      for (int Ox = 0; Ox < OutShape.Width; ++Ox) {
        double Sum = B[Oc];
        for (int Ic = 0; Ic < InShape.Channels; ++Ic) {
          for (int Ky = 0; Ky < KH; ++Ky) {
            int Iy = Oy * S + Ky - P;
            if (Iy < 0 || Iy >= InShape.Height)
              continue;
            for (int Kx = 0; Kx < KW; ++Kx) {
              int Ix = Ox * S + Kx - P;
              if (Ix < 0 || Ix >= InShape.Width)
                continue;
              Sum += kernelAt(Oc, Ic, Ky, Kx) * Input[InShape.index(Ic, Iy, Ix)];
            }
          }
        }
        Out[OutShape.index(Oc, Oy, Ox)] = Sum;
      }
    }
  }
  return Out;
}

Vector Conv2DLayer::backward(const Vector &Input, const Vector &GradOut,
                             bool AccumulateParams) {
  assert(GradOut.size() == static_cast<size_t>(OutShape.size()) &&
         "conv gradient size mismatch");
  // GradIn accumulates through the same dispatched saxpy the batched
  // matMul path is built from (the lowered row's zero-filled out-of-window
  // columns contribute identity terms), so per-point and batched gradients
  // stay bit-identical at every SIMD level. Parameter gradients keep the
  // tap loop: they index the kernel tensor, not the input row.
  if (!Lowered)
    buildLowered();
  Vector GradIn(InShape.size());
  for (int Oc = 0; Oc < OutShape.Channels; ++Oc) {
    for (int Oy = 0; Oy < OutShape.Height; ++Oy) {
      for (int Ox = 0; Ox < OutShape.Width; ++Ox) {
        size_t Row = OutShape.index(Oc, Oy, Ox);
        double G = GradOut[Row];
        if (G == 0.0)
          continue;
        if (AccumulateParams)
          GradB[Oc] += G;
        kernels::axpy(GradIn.data(), Lowered->W.row(Row), G, GradIn.size());
        if (!AccumulateParams)
          continue;
        for (int Ic = 0; Ic < InShape.Channels; ++Ic) {
          for (int Ky = 0; Ky < KH; ++Ky) {
            int Iy = Oy * S + Ky - P;
            if (Iy < 0 || Iy >= InShape.Height)
              continue;
            for (int Kx = 0; Kx < KW; ++Kx) {
              int Ix = Ox * S + Kx - P;
              if (Ix < 0 || Ix >= InShape.Width)
                continue;
              int In = InShape.index(Ic, Iy, Ix);
              GradKernels[kernelIndex(Oc, Ic, Ky, Kx)] += G * Input[In];
            }
          }
        }
      }
    }
  }
  return GradIn;
}

Matrix Conv2DLayer::forwardBatch(const Matrix &X) const {
  assert(X.cols() == static_cast<size_t>(InShape.size()) &&
         "conv batched input size mismatch");
  // The lowered dense form lists each window's taps in the same ascending
  // input-index order the nested tap loops visit, and the out-of-window
  // columns it zero-fills contribute identity +0.0 terms, so PreInit
  // accumulation (bias first, taps ascending) reproduces forward() bit for
  // bit.
  if (!Lowered)
    buildLowered();
  return kernels::affineBatch(X, Lowered->W, Lowered->Bias,
                              kernels::BiasMode::PreInit);
}

Matrix Conv2DLayer::backwardBatch(const Matrix &X, const Matrix &GradOut) const {
  assert(GradOut.cols() == static_cast<size_t>(OutShape.size()) &&
         X.rows() == GradOut.rows() && "conv batched gradient size mismatch");
  // matMul accumulates GradIn(i, in) ascending over output coordinates and
  // skips zero output gradients — exactly the scalar backward()'s (Oc,Oy,Ox)
  // visit order with its G == 0 skip.
  if (!Lowered)
    buildLowered();
  return matMul(GradOut, Lowered->W);
}

void Conv2DLayer::applyGradients(double LearningRate, double BatchSize) {
  double Step = LearningRate / BatchSize;
  for (size_t I = 0, E = Kernels.size(); I < E; ++I)
    Kernels[I] -= Step * GradKernels[I];
  for (size_t I = 0, E = B.size(); I < E; ++I)
    B[I] -= Step * GradB[I];
  Lowered.reset();
}

void Conv2DLayer::zeroGradients() {
  std::fill(GradKernels.begin(), GradKernels.end(), 0.0);
  GradB.fill(0.0);
}

void Conv2DLayer::buildLowered() const {
  auto Form = std::make_unique<LoweredForm>();
  Form->W = Matrix(OutShape.size(), InShape.size());
  Form->Bias = Vector(OutShape.size());
  // Each output coordinate owns exactly one W row, so the scatter shards
  // cleanly across rows. Row index decomposes as ((Oc*H)+Oy)*W+Ox.
  size_t RowCost = static_cast<size_t>(InShape.Channels) * KH * KW;
  kernels::parallelFor(
      static_cast<size_t>(OutShape.size()), RowCost,
      [&](size_t Begin, size_t End) {
        for (size_t Row = Begin; Row < End; ++Row) {
          int Ox = static_cast<int>(Row) % OutShape.Width;
          int Oy = (static_cast<int>(Row) / OutShape.Width) % OutShape.Height;
          int Oc = static_cast<int>(Row) / (OutShape.Width * OutShape.Height);
          Form->Bias[Row] = B[Oc];
          for (int Ic = 0; Ic < InShape.Channels; ++Ic) {
            for (int Ky = 0; Ky < KH; ++Ky) {
              int Iy = Oy * S + Ky - P;
              if (Iy < 0 || Iy >= InShape.Height)
                continue;
              for (int Kx = 0; Kx < KW; ++Kx) {
                int Ix = Ox * S + Kx - P;
                if (Ix < 0 || Ix >= InShape.Width)
                  continue;
                Form->W(Row, InShape.index(Ic, Iy, Ix)) =
                    Kernels[kernelIndex(Oc, Ic, Ky, Kx)];
              }
            }
          }
        }
      });
  Lowered = std::move(Form);
}

std::optional<AffineView> Conv2DLayer::affineForm() const {
  if (!Lowered)
    buildLowered();
  return AffineView{&Lowered->W, &Lowered->Bias};
}

std::unique_ptr<Layer> Conv2DLayer::clone() const {
  auto Copy =
      std::make_unique<Conv2DLayer>(InShape, OutShape.Channels, KH, KW, S, P);
  Copy->Kernels = Kernels;
  Copy->B = B;
  return Copy;
}
