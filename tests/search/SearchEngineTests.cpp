//===- SearchEngineTests.cpp - Proof-search engine behavior -------------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Behavior of the explicit proof-search engine behind verify() and
// verifyParallel(): cooperative cancellation and deadline expiry drain the
// frontier cleanly (no fabricated verdict, a resumable checkpoint instead),
// checkpoints round-trip byte-identically and resuming one reproduces the
// uninterrupted run bit-for-bit, frontier orders are pure scheduling (same
// verdict/counterexample/objective), and the trace sink sees exactly one
// event per expansion. Plus unit coverage for the ProofTree's path seeds
// and DFS order and the Frontier's pop orders.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "data/Benchmarks.h"
#include "search/Checkpoint.h"
#include "search/ProofTree.h"
#include "search/Trace.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

using namespace charon;

namespace {

constexpr double BudgetSeconds = 5.0;
constexpr const char *CacheDir = "/tmp/charon-test-networks";

bool sameVector(const Vector &A, const Vector &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I] != B[I])
      return false;
  return true;
}

bool sameStatsIgnoringTime(const VerifyStats &A, const VerifyStats &B) {
  return A.PgdCalls == B.PgdCalls && A.AnalyzeCalls == B.AnalyzeCalls &&
         A.Splits == B.Splits && A.MaxDepth == B.MaxDepth &&
         A.IntervalChoices == B.IntervalChoices &&
         A.ZonotopeChoices == B.ZonotopeChoices &&
         A.DisjunctSum == B.DisjunctSum &&
         A.NodesExpanded == B.NodesExpanded;
}

VerifierConfig baseConfig() {
  VerifierConfig Config;
  Config.Seed = 7;
  Config.TimeLimitSeconds = BudgetSeconds;
  return Config;
}

// Resumes Step's checkpoint until the search decides, asserting the
// byte-identity of the serialized form at every hop. Returns the final
// result (which may still be Timeout if Limit hops were not enough).
VerifyResult resumeToCompletion(const Verifier &V,
                                const RobustnessProperty &Prop,
                                VerifyResult Step, int Limit = 16) {
  while (Step.Result == Outcome::Timeout && Limit-- > 0) {
    EXPECT_TRUE(Step.Checkpoint) << "Timeout without a resumable checkpoint";
    if (!Step.Checkpoint)
      return Step;
    std::string Text = serializeCheckpoint(*Step.Checkpoint);
    std::optional<SearchCheckpoint> Reparsed = deserializeCheckpoint(Text);
    EXPECT_TRUE(Reparsed) << "checkpoint does not parse back";
    if (!Reparsed)
      return Step;
    EXPECT_EQ(Text, serializeCheckpoint(*Reparsed))
        << "checkpoint round-trip is not byte-identical";
    Step = V.verify(Prop, &*Reparsed);
  }
  return Step;
}

//===----------------------------------------------------------------------===//
// ProofTree: path seeds and DFS order
//===----------------------------------------------------------------------===//

TEST(ProofTreeTest, PathSeedsDependOnlyOnThePath) {
  uint64_t Root = ProofTree::rootSeed(7);
  EXPECT_EQ(Root, ProofTree::rootSeed(7));
  EXPECT_NE(Root, ProofTree::rootSeed(8));
  EXPECT_NE(ProofTree::childSeed(Root, 0), ProofTree::childSeed(Root, 1));
  EXPECT_NE(ProofTree::childSeed(Root, 0), Root);

  // The tree assigns exactly the fold of the split bits, however the node
  // was materialized (ordinary child vs detached checkpoint restore).
  ProofTree Tree(7);
  NodeId R = Tree.addRoot(Box::uniform(2, 0.0, 1.0));
  EXPECT_EQ(Tree.node(R).PathSeed, Root);
  auto [Lo, Hi] = Box::uniform(2, 0.0, 1.0).split(0, 0.5);
  auto [L, U] = Tree.addChildren(R, Lo, Hi, Vector(), 0.0);
  EXPECT_EQ(Tree.node(L).PathSeed, ProofTree::childSeed(Root, 0));
  EXPECT_EQ(Tree.node(U).PathSeed, ProofTree::childSeed(Root, 1));

  ProofTree Other(7);
  NodeId Detached = Other.addDetached({1}, Hi, Vector(), 0.0);
  EXPECT_EQ(Other.node(Detached).PathSeed, Tree.node(U).PathSeed);
}

TEST(ProofTreeTest, DfsOrderIsAncestorsFirstLowerHalfFirst) {
  ProofTree Tree(7);
  Box Region = Box::uniform(2, 0.0, 1.0);
  NodeId R = Tree.addRoot(Region);
  auto [Lo, Hi] = Region.split(0, 0.5);
  auto [L, U] = Tree.addChildren(R, Lo, Hi, Vector(), 0.0);
  auto [LLo, LHi] = Lo.split(1, 0.5);
  auto [LL, LU] = Tree.addChildren(L, LLo, LHi, Vector(), 0.0);

  EXPECT_EQ(Tree.pathString(R), "-");
  EXPECT_EQ(Tree.pathString(L), "0");
  EXPECT_EQ(Tree.pathString(U), "1");
  EXPECT_EQ(Tree.pathString(LU), "01");

  // Ancestors strictly precede descendants; at the first diverging split
  // the lower half (and its whole subtree) precedes the upper half.
  EXPECT_TRUE(Tree.dfsPrecedes(R, L));
  EXPECT_TRUE(Tree.dfsPrecedes(L, LL));
  EXPECT_TRUE(Tree.dfsPrecedes(L, U));
  EXPECT_TRUE(Tree.dfsPrecedes(LL, LU));
  EXPECT_TRUE(Tree.dfsPrecedes(LU, U));
  EXPECT_FALSE(Tree.dfsPrecedes(U, LU));
  EXPECT_FALSE(Tree.dfsPrecedes(R, R));
}

//===----------------------------------------------------------------------===//
// Frontier: pop orders
//===----------------------------------------------------------------------===//

TEST(FrontierTest, LifoPopsLastPushedFirst) {
  ProofTree Tree(7);
  Box Region = Box::uniform(1, 0.0, 1.0);
  NodeId R = Tree.addRoot(Region);
  auto [Lo, Hi] = Region.split(0, 0.5);
  auto [L, U] = Tree.addChildren(R, Lo, Hi, Vector(), 0.0);

  Frontier F(FrontierOrder::Lifo, &Tree);
  F.push(U);
  F.push(L);
  ASSERT_EQ(F.size(), 2u);
  EXPECT_EQ(F.pop(), L); // pushed upper-then-lower => lower expands first
  EXPECT_EQ(F.pop(), U);
  EXPECT_TRUE(F.empty());
}

TEST(FrontierTest, BestFirstPopsMinPriorityWithDfsTieBreak) {
  ProofTree Tree(7);
  Box Region = Box::uniform(1, 0.0, 1.0);
  NodeId R = Tree.addRoot(Region);
  auto [Lo, Hi] = Region.split(0, 0.5);
  auto [L, U] = Tree.addChildren(R, Lo, Hi, Vector(), 2.0);
  auto [LLo, LHi] = Lo.split(0, 0.25);
  auto [LL, LU] = Tree.addChildren(L, LLo, LHi, Vector(), 0.5);

  Frontier F(FrontierOrder::BestFirst, &Tree);
  F.push(U);  // priority 2.0
  F.push(LU); // priority 0.5
  F.push(LL); // priority 0.5, DFS-earlier than LU
  EXPECT_EQ(F.pop(), LL); // min priority, tie broken toward DFS-earliest
  EXPECT_EQ(F.pop(), LU);
  EXPECT_EQ(F.pop(), U);
}

//===----------------------------------------------------------------------===//
// Cancellation and deadlines: clean drain, no fabricated verdict
//===----------------------------------------------------------------------===//

TEST(SearchEngineTest, ImmediateCancelYieldsRootOnlyCheckpoint) {
  BenchmarkSuite Suite = makeAcasSuite(3, 321, CacheDir);
  ASSERT_FALSE(Suite.Properties.empty());
  const RobustnessProperty &Prop = Suite.Properties.front();

  VerifierConfig Config = baseConfig();
  Config.CancelRequested = [] { return true; };
  Verifier V(Suite.Net, VerificationPolicy(), Config);

  VerifyResult Seq = V.verify(Prop);
  EXPECT_EQ(Seq.Result, Outcome::Timeout); // cancelled, never a verdict
  ASSERT_TRUE(Seq.Checkpoint);
  ASSERT_EQ(Seq.Checkpoint->Open.size(), 1u); // nothing expanded: just root
  EXPECT_TRUE(Seq.Checkpoint->Open.front().Path.empty());
  EXPECT_EQ(Seq.Stats.NodesExpanded, 0);
  EXPECT_EQ(Seq.Stats.Splits, 0);

  // The parallel driver drains its workers to the same empty progress and
  // serializes the identical checkpoint.
  ThreadPool Pool(4);
  VerifyResult Par = V.verifyParallel(Prop, Pool);
  EXPECT_EQ(Par.Result, Outcome::Timeout);
  ASSERT_TRUE(Par.Checkpoint);
  SearchCheckpoint A = *Seq.Checkpoint;
  SearchCheckpoint B = *Par.Checkpoint;
  A.Stats.Seconds = B.Stats.Seconds = 0.0; // wall-clock is the only delta
  EXPECT_EQ(serializeCheckpoint(A), serializeCheckpoint(B));
}

TEST(SearchEngineTest, MidSearchCancelResumesToTheUninterruptedRun) {
  BenchmarkSuite Suite = makeAcasSuite(8, 321, CacheDir);
  VerificationPolicy Policy;
  Verifier Reference(Suite.Net, Policy, baseConfig());

  // Pick a property the uninterrupted run decides with enough expansions
  // that cancelling after three scheduler polls lands mid-search.
  const RobustnessProperty *Prop = nullptr;
  VerifyResult Full;
  for (const RobustnessProperty &P : Suite.Properties) {
    VerifyResult R = Reference.verify(P);
    if (R.Result != Outcome::Timeout && R.Stats.NodesExpanded >= 6) {
      Prop = &P;
      Full = R;
      break;
    }
  }
  ASSERT_NE(Prop, nullptr) << "suite has no multi-node decided property";

  VerifierConfig Cancelling = baseConfig();
  auto Polls = std::make_shared<std::atomic<long>>(0);
  Cancelling.CancelRequested = [Polls] { return Polls->fetch_add(1) >= 3; };
  Verifier Interrupted(Suite.Net, Policy, Cancelling);

  VerifyResult Step = Interrupted.verify(*Prop);
  ASSERT_EQ(Step.Result, Outcome::Timeout); // cancelled mid-search
  ASSERT_TRUE(Step.Checkpoint);
  EXPECT_FALSE(Step.Checkpoint->Open.empty());
  EXPECT_LT(Step.Stats.NodesExpanded, Full.Stats.NodesExpanded);

  // Resuming (without the cancel hook) replays exactly the expansions the
  // uninterrupted run would have made: the verdict, counterexample,
  // objective, and stats modulo wall-clock are bit-identical.
  VerifyResult Resumed = resumeToCompletion(Reference, *Prop, Step);
  ASSERT_NE(Resumed.Result, Outcome::Timeout);
  EXPECT_EQ(Resumed.Result, Full.Result);
  EXPECT_EQ(Resumed.ObjectiveAtCex, Full.ObjectiveAtCex);
  EXPECT_TRUE(sameVector(Resumed.Counterexample, Full.Counterexample));
  EXPECT_TRUE(sameStatsIgnoringTime(Resumed.Stats, Full.Stats));
}

TEST(SearchEngineTest, DeadlineExpiryCarriesAResumableCheckpoint) {
  BenchmarkSuite Suite = makeAcasSuite(8, 321, CacheDir);
  VerifierConfig Tiny = baseConfig();
  // Small enough that at least one property reliably hits the deadline even
  // with the SIMD kernel backends active (20ms stopped being tiny for these
  // networks once the zonotope kernels got vectorized).
  Tiny.TimeLimitSeconds = 0.002;
  Verifier V(Suite.Net, VerificationPolicy(), Tiny);

  bool SawTimeout = false;
  for (const RobustnessProperty &Prop : Suite.Properties) {
    SCOPED_TRACE(Prop.Name);
    VerifyResult R = V.verify(Prop);
    if (R.Result != Outcome::Timeout)
      continue;
    SawTimeout = true;
    // A Timeout always carries a checkpoint with at least one open node
    // (a drained frontier would have been a Verified verdict instead),
    // and its stats mirror the result's.
    ASSERT_TRUE(R.Checkpoint);
    EXPECT_FALSE(R.Checkpoint->Open.empty());
    EXPECT_EQ(R.Checkpoint->Stats.NodesExpanded, R.Stats.NodesExpanded);
    std::string Text = serializeCheckpoint(*R.Checkpoint);
    std::optional<SearchCheckpoint> Reparsed = deserializeCheckpoint(Text);
    ASSERT_TRUE(Reparsed);
    EXPECT_EQ(Text, serializeCheckpoint(*Reparsed));

    // Resuming under the same tiny budget keeps making monotone progress.
    VerifyResult Next = V.verify(Prop, &*Reparsed);
    EXPECT_GE(Next.Stats.NodesExpanded, R.Stats.NodesExpanded);
  }
  EXPECT_TRUE(SawTimeout)
      << "no property timed out under a 20ms budget; deadline path untested";
}

TEST(SearchEngineTest, MismatchedCheckpointIsIgnored) {
  BenchmarkSuite Suite = makeAcasSuite(3, 321, CacheDir);
  const RobustnessProperty &Prop = Suite.Properties.front();
  VerificationPolicy Policy;

  VerifierConfig Config = baseConfig();
  Config.CancelRequested = [] { return true; };
  VerifyResult Step = Verifier(Suite.Net, Policy, Config).verify(Prop);
  ASSERT_TRUE(Step.Checkpoint);

  // A checkpoint from a different config (seed 7) must not poison a run
  // with different search semantics (seed 8): the digest guard rejects it
  // and the search starts fresh, bit-identical to no checkpoint at all.
  VerifierConfig OtherSeed = baseConfig();
  OtherSeed.Seed = 8;
  Verifier V(Suite.Net, Policy, OtherSeed);
  VerifyResult Fresh = V.verify(Prop);
  VerifyResult WithStale = V.verify(Prop, &*Step.Checkpoint);
  ASSERT_NE(Fresh.Result, Outcome::Timeout);
  EXPECT_EQ(WithStale.Result, Fresh.Result);
  EXPECT_EQ(WithStale.ObjectiveAtCex, Fresh.ObjectiveAtCex);
  EXPECT_TRUE(sameVector(WithStale.Counterexample, Fresh.Counterexample));
  EXPECT_TRUE(sameStatsIgnoringTime(WithStale.Stats, Fresh.Stats));
}

//===----------------------------------------------------------------------===//
// Frontier orders are pure scheduling
//===----------------------------------------------------------------------===//

TEST(SearchEngineTest, FrontierOrdersAgreeOnVerdictAndCounterexample) {
  BenchmarkSuite Suite = makeAcasSuite(8, 321, CacheDir);
  VerificationPolicy Policy;
  VerifierConfig Lifo = baseConfig();
  VerifierConfig Best = baseConfig();
  Best.SearchOrder = FrontierOrder::BestFirst;
  Verifier VLifo(Suite.Net, Policy, Lifo);
  Verifier VBest(Suite.Net, Policy, Best);

  int Compared = 0;
  for (const RobustnessProperty &Prop : Suite.Properties) {
    SCOPED_TRACE(Prop.Name);
    VerifyResult A = VLifo.verify(Prop);
    VerifyResult B = VBest.verify(Prop);
    if (A.Result == Outcome::Timeout || B.Result == Outcome::Timeout)
      continue;
    ++Compared;
    // The DFS-earliest falsification rule makes the answer independent of
    // the pop order, down to the counterexample bits.
    EXPECT_EQ(A.Result, B.Result);
    EXPECT_EQ(A.ObjectiveAtCex, B.ObjectiveAtCex);
    EXPECT_TRUE(sameVector(A.Counterexample, B.Counterexample));
  }
  EXPECT_GE(Compared, 4) << "too few properties decided within budget";
}

//===----------------------------------------------------------------------===//
// Trace events
//===----------------------------------------------------------------------===//

TEST(SearchEngineTest, TraceSeesExactlyOneEventPerExpansion) {
  BenchmarkSuite Suite = makeAcasSuite(3, 321, CacheDir);
  VerifierConfig Config = baseConfig();
  std::vector<TraceEvent> Events; // serial run: no locking needed
  Config.Trace = [&Events](const TraceEvent &E) { Events.push_back(E); };
  Verifier V(Suite.Net, VerificationPolicy(), Config);

  for (const RobustnessProperty &Prop : Suite.Properties) {
    SCOPED_TRACE(Prop.Name);
    Events.clear();
    VerifyResult R = V.verify(Prop);
    if (R.Result == Outcome::Timeout)
      continue;

    // One event per committed expansion; aborted events (deadline hit
    // mid-expansion) are emitted but not counted, and cannot occur on a
    // decided run that never saw the deadline.
    long Aborted = 0;
    for (const TraceEvent &E : Events) {
      ASSERT_NE(E.Outcome, nullptr);
      bool Known = !std::strcmp(E.Outcome, "falsified") ||
                   !std::strcmp(E.Outcome, "verified") ||
                   !std::strcmp(E.Outcome, "split") ||
                   !std::strcmp(E.Outcome, "aborted");
      EXPECT_TRUE(Known) << "unknown outcome " << E.Outcome;
      if (!std::strcmp(E.Outcome, "aborted"))
        ++Aborted;
      EXPECT_GE(E.Depth, 0);
      EXPECT_GT(E.Diameter, 0.0);
      EXPECT_GE(E.Seconds, 0.0);
      EXPECT_EQ(E.Path.empty(), false);

      // The JSONL rendering carries the full charon-trace/1 schema.
      std::string Json = traceEventToJson(E);
      for (const char *Key : {"\"path\":", "\"depth\":", "\"diameter\":",
                              "\"pgd_objective\":", "\"outcome\":",
                              "\"seconds\":"})
        EXPECT_NE(Json.find(Key), std::string::npos) << Json;
      EXPECT_EQ(Json.front(), '{');
      EXPECT_EQ(Json.back(), '}');
    }
    EXPECT_EQ(static_cast<long>(Events.size()) - Aborted,
              R.Stats.NodesExpanded);
    ASSERT_FALSE(Events.empty());
    EXPECT_EQ(Events.front().Path, "-"); // serial LIFO expands root first
  }
}

} // namespace
