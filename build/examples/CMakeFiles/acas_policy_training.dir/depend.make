# Empty dependencies file for acas_policy_training.
# This may be replaced when dependencies are built.
