//===- Builder.h - Network construction helpers ------------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience constructors for the architectures the paper evaluates
/// (Sec. 7): fully connected NxM ReLU networks and a scaled LeNet-style
/// convolutional network.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_NN_BUILDER_H
#define CHARON_NN_BUILDER_H

#include "nn/Conv2D.h"
#include "nn/Network.h"

#include <vector>

namespace charon {
class Rng;

/// Builds a fully connected ReLU network: input -> hidden sizes (each
/// followed by ReLU) -> output logits, He-initialized from \p R.
///
/// The paper's "NxM" nets correspond to N entries of M in \p HiddenSizes.
Network makeMlp(size_t InputSize, const std::vector<size_t> &HiddenSizes,
                size_t NumClasses, Rng &R);

/// As above with an explicit hidden activation (ReLU, sigmoid, or tanh).
/// The weight draws are identical across activations, so nets built from
/// the same seed differ only in their activation layers.
Network makeMlp(size_t InputSize, const std::vector<size_t> &HiddenSizes,
                size_t NumClasses, Rng &R, ActivationKind Act);

/// Builds a scaled LeNet-style convolutional network (Sec. 7 uses two conv
/// layers, max pool, two more conv layers, max pool, then fully connected
/// layers; we scale the channel counts to the synthetic input size):
/// conv-relu, conv-relu, maxpool, conv-relu, maxpool, dense-relu, dense.
Network makeLeNet(TensorShape Input, size_t NumClasses, Rng &R);

} // namespace charon

#endif // CHARON_NN_BUILDER_H
