
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/Builder.cpp" "src/nn/CMakeFiles/charon_nn.dir/Builder.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Builder.cpp.o.d"
  "/root/repo/src/nn/Conv2D.cpp" "src/nn/CMakeFiles/charon_nn.dir/Conv2D.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Conv2D.cpp.o.d"
  "/root/repo/src/nn/Dense.cpp" "src/nn/CMakeFiles/charon_nn.dir/Dense.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Dense.cpp.o.d"
  "/root/repo/src/nn/Io.cpp" "src/nn/CMakeFiles/charon_nn.dir/Io.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Io.cpp.o.d"
  "/root/repo/src/nn/Layer.cpp" "src/nn/CMakeFiles/charon_nn.dir/Layer.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Layer.cpp.o.d"
  "/root/repo/src/nn/MaxPool2D.cpp" "src/nn/CMakeFiles/charon_nn.dir/MaxPool2D.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/MaxPool2D.cpp.o.d"
  "/root/repo/src/nn/Network.cpp" "src/nn/CMakeFiles/charon_nn.dir/Network.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Network.cpp.o.d"
  "/root/repo/src/nn/Relu.cpp" "src/nn/CMakeFiles/charon_nn.dir/Relu.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Relu.cpp.o.d"
  "/root/repo/src/nn/Train.cpp" "src/nn/CMakeFiles/charon_nn.dir/Train.cpp.o" "gcc" "src/nn/CMakeFiles/charon_nn.dir/Train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/charon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/charon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
