# Empty dependencies file for charon_opt.
# This may be replaced when dependencies are built.
