//===- Kernels.h - Blocked/threaded dense kernels ---------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched linear-algebra kernels behind the abstract transformers: a
/// generator-matrix zonotope pushes all noise symbols through an affine layer
/// with one cache-blocked matrix product instead of one matVec per symbol.
///
/// Every kernel preserves the per-element accumulation order of its naive
/// reference (ascending k for products, ascending row for column sums), so
/// results are bit-identical to the unblocked single-threaded loops and
/// deterministic across thread counts. Threading shards output *rows*; no two
/// shards touch the same output element.
///
/// Threshold model: a kernel runs single-threaded when its approximate flop
/// count is below parallelThreshold(), so ACAS-scale analyses (tens of
/// dimensions) never pay pool latency; large Dense+ReLU stacks shard across
/// the process-wide kernel ThreadPool. Both knobs have env overrides
/// (CHARON_KERNEL_THRESHOLD, CHARON_KERNEL_THREADS) so the sanitizer build
/// can force the threaded paths on small fuzz networks.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_LINALG_KERNELS_H
#define CHARON_LINALG_KERNELS_H

#include "linalg/Matrix.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace charon {
namespace kernels {

/// Flop threshold below which kernels stay single-threaded. Initialized from
/// CHARON_KERNEL_THRESHOLD when set (values <= 1 force threading everywhere).
size_t parallelThreshold();

/// Overrides the threshold at runtime; 0 forces every kernel parallel.
void setParallelThreshold(size_t Flops);

/// Worker count of the kernel pool: CHARON_KERNEL_THREADS, else hardware
/// concurrency. 1 disables threading entirely.
unsigned kernelThreads();

/// Runs Body(Begin, End) over a partition of [0, N). Single-threaded when
/// N * CostPerItem < parallelThreshold(); otherwise shards contiguously
/// across the kernel pool (the shard layout depends only on N and the pool
/// size, keeping runs deterministic).
void parallelFor(size_t N, size_t CostPerItem,
                 const std::function<void(size_t, size_t)> &Body);

/// C = A * B^T without materializing the transpose: A is M x K, B is N x K,
/// C is M x N with C(i,j) = dot(A.row(i), B.row(j)). This is the zonotope
/// generator update NewG = G * W^T — both operands are traversed row-major.
Matrix matMulTransposed(const Matrix &A, const Matrix &B);

/// Writes A * B^T into rows [RowOffset, RowOffset + A.rows()) of \p C, which
/// must already have B.rows() columns. Lets callers compute into a larger
/// preallocated block (e.g. dense generators above a materialized sparse
/// tail) without a copy.
void matMulTransposedInto(const Matrix &A, const Matrix &B, Matrix &C,
                          size_t RowOffset);

/// Per-row L1 norms: Out[i] = sum_j |A(i, j)|. For a generator matrix this
/// is each noise symbol's total magnitude (the compaction criterion).
Vector absRowSums(const Matrix &A);

/// Per-column L1 norms: Out[j] = sum_i |A(i, j)|, accumulated row-major in
/// one fused pass. For a generator matrix this is the per-coordinate
/// deviation radius. Kept single-threaded: it is memory-bound and the
/// row-major accumulation order is part of the layout-equivalence contract.
Vector absColumnSums(const Matrix &A);

/// A(i, j) *= Scale[j] for every row — the batched ReLU rescaling (Scale
/// holds 1, 0, or lambda per coordinate). One contiguous sweep, sharded by
/// rows.
void scaleColumns(Matrix &A, const Vector &Scale);

/// Out(i, o) = SrcCol[o] < 0 ? 0 : A(i, SrcCol[o]) for every row. The
/// batched max-pool gather: each output coordinate copies its dominant input
/// column or starts at zero for interval-hull fallback windows. \p Out must
/// be pre-sized to A.rows() x SrcCol.size().
void gatherColumns(const Matrix &A, const std::vector<int> &SrcCol,
                   Matrix &Out);

} // namespace kernels
} // namespace charon

#endif // CHARON_LINALG_KERNELS_H
