//===- Campaign.h - Time-boxed soundness-fuzzing campaigns -------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign runner ties the pieces together: it derives one independent
/// RNG per case index from the campaign seed (so any single case can be
/// replayed without re-running its predecessors), generates a random
/// network + property, and feeds them through the full oracle set —
/// containment on every configured domain, powerset precision, verdict
/// agreement, counterexample validity, and subregion monotonicity. Any
/// violation is captured as a self-contained FuzzRepro and, when a repro
/// directory is configured, written to disk for the fuzz_repro test target
/// and manual triage.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_FUZZ_CAMPAIGN_H
#define CHARON_FUZZ_CAMPAIGN_H

#include "fuzz/Repro.h"

#include <optional>
#include <string>
#include <vector>

namespace charon {

/// Campaign parameters.
struct CampaignConfig {
  uint64_t Seed = 1;
  /// Wall-clock budget; <= 0 means unlimited (MaxCases must then be set).
  double TimeBudgetSeconds = 60.0;
  /// Case cap; <= 0 means unlimited within the time budget.
  long MaxCases = -1;
  GeneratorConfig Gen;
  OracleConfig Oracle;
  /// Domains the containment oracle checks. Empty selects the default set
  /// (interval, symbolic interval, zonotope, powersets of interval and
  /// zonotope, polyhedra).
  std::vector<DomainSpec> Domains;
  /// When non-empty, every violating case is written here as
  /// fuzz-<seed>-<index>.repro.
  std::string ReproDir;
};

/// Counters over one campaign.
struct CampaignStats {
  long Cases = 0;
  long ContainmentChecks = 0;
  long PrecisionChecks = 0;
  long AgreementChecks = 0;
  long MonotonicityChecks = 0;
  long CexChecks = 0;
  long ResumeChecks = 0;
  long CegarChecks = 0;
  long CertificateChecks = 0;
  long Violations = 0; ///< violating cases (not individual messages)
  double Seconds = 0.0;

  long totalChecks() const {
    return ContainmentChecks + PrecisionChecks + AgreementChecks +
           MonotonicityChecks + CexChecks + ResumeChecks + CegarChecks +
           CertificateChecks;
  }
};

/// Campaign outcome: stats plus one repro per violating case.
struct CampaignResult {
  CampaignStats Stats;
  std::vector<FuzzRepro> Violations;
  std::vector<std::string> ReproPaths; ///< files written (when ReproDir set)
};

/// The default containment-domain set (the four domain families).
std::vector<DomainSpec> defaultFuzzDomains();

/// Parses a domain name as printed by toString(DomainSpec), e.g.
/// "Interval", "Zonotope^2"; nullopt on unknown names or bad budgets.
std::optional<DomainSpec> parseDomainSpec(const std::string &Name);

/// The deterministic per-case RNG: depends only on the campaign seed and
/// the case index, never on elapsed time or prior cases.
Rng caseRng(uint64_t CampaignSeed, long CaseIndex);

/// Runs the full oracle set on one (network, property) case. \p OracleR
/// must be positioned as produced by caseRng()+fork discipline (see
/// runCampaign/replayRepro). Stats are accumulated into \p Stats when
/// non-null.
std::vector<OracleViolation>
runFuzzCase(const Network &Net, const RobustnessProperty &Prop,
            const std::vector<DomainSpec> &Domains, const OracleConfig &Cfg,
            Rng &OracleR, CampaignStats *Stats = nullptr);

/// Runs a time-boxed campaign.
CampaignResult runCampaign(const CampaignConfig &Config);

} // namespace charon

#endif // CHARON_FUZZ_CAMPAIGN_H
