//===- ReluplexModeTests.cpp - Encoding-mode tests for the complete solver -----===//

#include "baselines/Reluplex.h"

#include "nn/Builder.h"
#include "support/Random.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

using namespace charon;

namespace {

RobustnessProperty makeProperty(Box Region, size_t K) {
  RobustnessProperty P;
  P.Region = std::move(Region);
  P.TargetClass = K;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// The two encodings must agree on verdicts (both are sound and complete);
// they differ only in cost.
//===----------------------------------------------------------------------===//

class ReluplexModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(ReluplexModeTest, XorRegionVerdicts) {
  Network Net = testing_nets::makeXorNetwork();
  ReluplexConfig Config;
  Config.TimeLimitSeconds = 30.0;
  Config.SymbolicBoundTightening = GetParam();

  EXPECT_EQ(reluplexVerify(Net, makeProperty(Box::uniform(2, 0.3, 0.7), 1),
                           Config)
                .Result,
            Outcome::Verified);
  ReluplexResult Broken =
      reluplexVerify(Net, makeProperty(Box::uniform(2, 0.1, 0.9), 1), Config);
  ASSERT_EQ(Broken.Result, Outcome::Falsified);
  EXPECT_LE(Net.objective(Broken.Counterexample, 1), 0.0);
}

TEST_P(ReluplexModeTest, AgreesWithSamplingOnRandomNets) {
  Rng NetRng(21);
  Rng SampleRng(22);
  ReluplexConfig Config;
  Config.TimeLimitSeconds = 20.0;
  Config.SymbolicBoundTightening = GetParam();
  for (int T = 0; T < 4; ++T) {
    Network Net = makeMlp(2, {5}, 2, NetRng);
    Vector Center{SampleRng.uniform(-0.4, 0.4), SampleRng.uniform(-0.4, 0.4)};
    Box Region = Box::linfBall(Center, 0.25, -1.0, 1.0);
    size_t K = Net.classify(Center);
    ReluplexResult R = reluplexVerify(Net, makeProperty(Region, K), Config);
    bool SamplingFoundCex = false;
    for (int S = 0; S < 1500 && !SamplingFoundCex; ++S)
      SamplingFoundCex = Net.classify(Region.sample(SampleRng)) != K;
    if (R.Result == Outcome::Verified) {
      EXPECT_FALSE(SamplingFoundCex) << "trial " << T;
    }
    if (SamplingFoundCex && R.Result != Outcome::Timeout) {
      EXPECT_EQ(R.Result, Outcome::Falsified) << "trial " << T;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, ReluplexModeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "SymbolicTightened"
                                             : "PaperFaithful";
                         });

//===----------------------------------------------------------------------===//
// Cost asymmetry: the tightened encoding must explore no more nodes.
//===----------------------------------------------------------------------===//

TEST(ReluplexCostTest, TighteningShrinksSearchInAggregate) {
  // Tightened bounds decide more neurons up front, so across a batch of
  // instances the tightened encoding explores no more nodes overall.
  // (Per-instance the branching order can differ, so only the aggregate is
  // a stable invariant.)
  Rng NetRng(23);
  Rng RegionRng(24);
  long FaithfulNodes = 0, TightenedNodes = 0;
  int Compared = 0;
  for (int T = 0; T < 6; ++T) {
    Network Net = makeMlp(3, {8, 8}, 2, NetRng);
    Vector Center(3);
    for (size_t I = 0; I < 3; ++I)
      Center[I] = RegionRng.uniform(-0.3, 0.3);
    Box Region = Box::linfBall(Center, 0.15, -1.0, 1.0);
    auto Prop = makeProperty(Region, Net.classify(Center));

    ReluplexConfig Faithful;
    Faithful.TimeLimitSeconds = 20.0;
    ReluplexConfig Tightened = Faithful;
    Tightened.SymbolicBoundTightening = true;

    ReluplexResult A = reluplexVerify(Net, Prop, Faithful);
    ReluplexResult B = reluplexVerify(Net, Prop, Tightened);
    if (A.Result == Outcome::Timeout || B.Result == Outcome::Timeout)
      continue;
    EXPECT_EQ(A.Result, B.Result) << "trial " << T;
    FaithfulNodes += A.Nodes;
    TightenedNodes += B.Nodes;
    ++Compared;
  }
  ASSERT_GE(Compared, 3);
  EXPECT_LE(TightenedNodes, FaithfulNodes);
}
