//===- FleetCoordinator.cpp - Multi-process sharded proof search --------------===//

#include "fleet/FleetCoordinator.h"

#include "cert/Certificate.h"
#include "core/Digest.h"
#include "nn/Io.h"
#include "nn/Network.h"

#include <algorithm>
#include <cstdio>
#include <csignal>
#include <set>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

using namespace charon;

namespace {
/// Milliseconds between coordinator housekeeping passes (deadline checks,
/// steals, dispatch) when no worker event wakes the loop earlier.
constexpr int TickMs = 20;
/// A slot that dies this many times in a row without completing a single
/// shard is considered broken (e.g. the worker binary fails to exec) and
/// is no longer used; with every slot broken, shards drain inline.
constexpr int BrokenSlotDeaths = 3;
} // namespace

/// One schedulable unit of work: a contiguous DFS run of some job's open
/// frontier. The DFS key of a shard is its first open node's path.
struct FleetCoordinator::Shard {
  uint64_t Id = 0;
  uint64_t Job = 0;
  SearchCheckpoint Cp;
  /// Steal attempts leave single-node shards alone until this instant —
  /// re-yielding a frontier that cannot be split would only abort and
  /// replay its in-flight node expansion forever.
  double StealBackoffUntil = 0.0;
};

/// One in-flight verify() call.
struct FleetCoordinator::JobRec {
  uint64_t Id = 0;
  const Network *Net = nullptr;
  const RobustnessProperty *Prop = nullptr;
  VerifierConfig Cfg;
  RunSpec Spec; ///< wire projection; Shard/Budget/Checkpoint set per dispatch
  uint64_t NetFp = 0;
  std::string NetText;
  double DeadlineAt = -1.0; ///< monotone seconds; < 0 = unlimited
  bool StopRequested = false;
  long Outstanding = 0; ///< live shards (queued + running + inline)
  /// DFS-earliest falsification seen so far (the shard-level analogue of
  /// the engine's confirmation rule).
  bool HasCand = false;
  std::vector<uint8_t> CandKey;
  std::vector<double> CandCex;
  double CandObj = 0.0;
  /// Unfinished frontiers from deadline/cancel cut-offs; merged into the
  /// resumable Timeout checkpoint.
  std::vector<SearchCheckpoint> Remnants;
  VerifyStats Agg; ///< stats of terminally resolved shards
  FleetJobReport Report;
  bool Done = false;
};

/// One worker seat: the child process (respawned on death) and the shard
/// it is currently running.
struct FleetCoordinator::Slot {
  std::unique_ptr<WorkerProcess> Proc;
  std::set<uint64_t> LoadedNets;
  bool Busy = false;
  Shard Current;
  double RunStart = 0.0;
  bool YieldRequested = false; ///< cancel sent to steal the frontier
  bool StopSent = false;       ///< cancel sent to stop (deadline/prune)
  int ConsecutiveDeaths = 0;
  bool Broken = false;
};

static const std::vector<uint8_t> &shardKey(const SearchCheckpoint &Cp) {
  return Cp.Open.front().Path;
}

FleetCoordinator::FleetCoordinator(VerificationPolicy Policy,
                                   FleetConfig Config)
    : Policy(std::move(Policy)), Config(std::move(Config)),
      Start(std::chrono::steady_clock::now()) {
  // A write into a dead child must fail with EPIPE, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  for (unsigned I = 0; I < this->Config.Workers; ++I)
    Slots.push_back(std::make_unique<Slot>());
  if (this->Config.Workers > 0 && !this->Config.WorkerBinary.empty()) {
    if (::pipe(WakePipe) == 0) {
      ::fcntl(WakePipe[0], F_SETFL, O_NONBLOCK);
      ::fcntl(WakePipe[1], F_SETFL, O_NONBLOCK);
      ::fcntl(WakePipe[0], F_SETFD, FD_CLOEXEC);
      ::fcntl(WakePipe[1], F_SETFD, FD_CLOEXEC);
      LoopThread = std::thread([this] { loop(); });
    }
  }
}

FleetCoordinator::~FleetCoordinator() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
    JobCv.notify_all();
  }
  wake();
  if (LoopThread.joinable())
    LoopThread.join();
  for (auto &S : Slots)
    if (S->Proc)
      S->Proc->shutdown(Config.ShutdownGraceSeconds);
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

double FleetCoordinator::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void FleetCoordinator::wake() {
  if (WakePipe[1] >= 0) {
    char B = 'w';
    (void)!::write(WakePipe[1], &B, 1);
  }
}

FleetStats FleetCoordinator::stats() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Counters;
}

FleetCoordinator::JobRec *FleetCoordinator::findJob(uint64_t Id) {
  for (auto &J : Jobs)
    if (J->Id == Id)
      return J.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// verify(): job intake and result composition
//===----------------------------------------------------------------------===//

VerifyResult FleetCoordinator::verify(const Network &Net,
                                      const RobustnessProperty &Prop,
                                      const VerifierConfig &Cfg,
                                      const SearchCheckpoint *Resume,
                                      FleetJobReport *Report) {
  bool FleetUsable = LoopThread.joinable();
  if (!FleetUsable || !configTransportable(Cfg)) {
    {
      std::lock_guard<std::mutex> L(Mutex);
      ++Counters.Jobs;
      ++Counters.InlineFallbacks;
    }
    if (Report) {
      *Report = FleetJobReport();
      Report->Inline = true;
      Report->PerWorkerExpanded.assign(Config.Workers, 0);
    }
    Verifier V(Net, Policy, Cfg);
    return V.verify(Prop, Resume);
  }

  uint64_t NetFp = fingerprintNetwork(Net);
  uint64_t PropDig = digestProperty(Prop);
  uint64_t SemDig = digestVerifierConfigSemantics(Cfg);
  std::ostringstream NetOs;
  saveNetwork(Net, NetOs);

  SearchCheckpoint Root;
  if (Resume && Resume->NetworkFingerprint == NetFp &&
      Resume->PropertyDigest == PropDig && Resume->ConfigDigest == SemDig) {
    Root = *Resume;
  } else {
    // Same rule as the serial driver: an incompatible checkpoint is
    // ignored and the search starts from the root frontier.
    Root.Order = Cfg.SearchOrder;
    Root.NetworkFingerprint = NetFp;
    Root.PropertyDigest = PropDig;
    Root.ConfigDigest = SemDig;
    CheckpointNode RootNode;
    RootNode.Region = Prop.Region;
    Root.Open.push_back(std::move(RootNode));
  }

  std::unique_lock<std::mutex> L(Mutex);
  ++Counters.Jobs;
  auto JOwn = std::make_unique<JobRec>();
  JobRec *J = JOwn.get();
  J->Id = NextJobId++;
  J->Net = &Net;
  J->Prop = &Prop;
  J->Cfg = Cfg;
  J->Spec = runSpecFromJob(Cfg, Prop, NetFp);
  J->NetFp = NetFp;
  J->NetText = NetOs.str();
  J->DeadlineAt = Cfg.TimeLimitSeconds > 0 ? now() + Cfg.TimeLimitSeconds : -1;
  J->Outstanding = 1;
  J->Report.PerWorkerExpanded.assign(Config.Workers, 0);
  Jobs.push_back(std::move(JOwn));

  Shard RootShard;
  RootShard.Id = NextShardId++;
  RootShard.Job = J->Id;
  RootShard.Cp = std::move(Root);
  Queue.push_back(std::move(RootShard));
  wake();

  JobCv.wait(L, [&] { return J->Done || Stopping; });

  VerifyResult R;
  if (J->HasCand) {
    R.Result = Outcome::Falsified;
    R.Counterexample = Vector(J->CandCex);
    R.ObjectiveAtCex = J->CandObj;
    for (const SearchCheckpoint &Rem : J->Remnants)
      J->Agg += Rem.Stats;
    R.Stats = J->Agg;
    if (Cfg.EmitCertificate)
      R.Certificate =
          std::make_shared<ProofCertificate>(buildFalsifiedCertificate(
              Net, Prop, Cfg, R.Counterexample, R.ObjectiveAtCex));
  } else if (!J->Remnants.empty() || J->StopRequested || !J->Done) {
    R.Result = Outcome::Timeout;
    if (!J->Remnants.empty()) {
      SearchCheckpoint Merged = mergeCheckpoints(J->Remnants);
      Merged.Stats += J->Agg;
      R.Stats = Merged.Stats;
      R.Checkpoint = std::make_shared<const SearchCheckpoint>(std::move(Merged));
    } else {
      R.Stats = J->Agg;
    }
  } else {
    // All shards verified. Fleet runs are checkpoint-resumed searches, so
    // (as with the serial resume path) Verified carries no certificate.
    R.Result = Outcome::Verified;
    R.Stats = J->Agg;
  }
  if (Report)
    *Report = J->Report;

  Jobs.erase(std::find_if(Jobs.begin(), Jobs.end(),
                          [&](const auto &P) { return P.get() == J; }));
  return R;
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

void FleetCoordinator::loop() {
  for (;;) {
    std::vector<pollfd> Fds;
    std::vector<size_t> SlotOf;
    {
      std::lock_guard<std::mutex> L(Mutex);
      if (Stopping)
        return;
      Fds.push_back({WakePipe[0], POLLIN, 0});
      for (size_t I = 0; I < Slots.size(); ++I)
        if (Slots[I]->Proc && Slots[I]->Proc->channelOpen()) {
          Fds.push_back({Slots[I]->Proc->outFd(), POLLIN, 0});
          SlotOf.push_back(I);
        }
    }
    ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), TickMs);

    std::lock_guard<std::mutex> L(Mutex);
    if (Stopping)
      return;
    if (Fds[0].revents & POLLIN) {
      char Buf[64];
      while (::read(WakePipe[0], Buf, sizeof(Buf)) > 0)
        ;
    }
    for (size_t K = 1; K < Fds.size(); ++K)
      if (Fds[K].revents & (POLLIN | POLLHUP | POLLERR))
        handleWorkerLines(SlotOf[K - 1]);
    // Catch deaths poll cannot report (a chaos kill closes the fds).
    for (size_t I = 0; I < Slots.size(); ++I)
      if (Slots[I]->Busy &&
          (!Slots[I]->Proc || !Slots[I]->Proc->channelOpen()))
        handleWorkerDeath(I);
    pollJobStops();
    dispatchShards();
    maybeSteal();
  }
}

void FleetCoordinator::handleWorkerLines(size_t SlotIdx) {
  Slot &S = *Slots[SlotIdx];
  if (!S.Proc)
    return;
  bool Alive = S.Proc->onReadable();
  std::string Line;
  while (S.Proc->popLine(Line)) {
    std::string Err;
    if (auto Ev = parseEventLine(Line, &Err))
      handleEvent(SlotIdx, *Ev);
    else
      std::fprintf(stderr, "charon-fleet: bad event from worker %zu: %s\n",
                   SlotIdx, Err.c_str());
  }
  if (!Alive)
    handleWorkerDeath(SlotIdx);
}

void FleetCoordinator::handleEvent(size_t SlotIdx, const FleetEvent &Ev) {
  Slot &S = *Slots[SlotIdx];
  switch (Ev.K) {
  case FleetEvent::Kind::Ready:
  case FleetEvent::Kind::Pong:
    return;
  case FleetEvent::Kind::Loaded:
    S.LoadedNets.insert(Ev.Fingerprint);
    return;
  case FleetEvent::Kind::Error:
    std::fprintf(stderr, "charon-fleet: worker %zu error: %s\n", SlotIdx,
                 Ev.Message.c_str());
    if (S.Busy) {
      // The worker refused the shard (e.g. digest mismatch). Requeueing
      // would loop; running it inline guarantees progress and the same
      // answer.
      Shard Failed = std::move(S.Current);
      S.Busy = false;
      S.YieldRequested = S.StopSent = false;
      runShardInline(std::move(Failed));
    }
    return;
  case FleetEvent::Kind::Done:
    break;
  }

  if (!S.Busy || Ev.Shard != S.Current.Id)
    return; // stale done for a shard this coordinator no longer tracks

  Shard Sh = std::move(S.Current);
  bool WasYield = S.YieldRequested;
  S.Busy = false;
  S.YieldRequested = S.StopSent = false;
  S.ConsecutiveDeaths = 0;

  JobRec *J = findJob(Sh.Job);
  if (!J || J->Done)
    return;
  if (SlotIdx < J->Report.PerWorkerExpanded.size())
    J->Report.PerWorkerExpanded[SlotIdx] += Ev.ExpandedHere;

  const std::vector<uint8_t> &Key = shardKey(Sh.Cp);
  bool Pruned = J->HasCand && dfsPathPrecedes(J->CandKey, Key);

  if (Ev.Outcome == "falsified") {
    if (!J->HasCand || dfsPathPrecedes(Key, J->CandKey)) {
      J->HasCand = true;
      J->CandKey = Key;
      J->CandCex = Ev.Cex;
      J->CandObj = Ev.Objective;
      pruneLaterShards(*J);
    }
    J->Agg += Ev.Stats;
    --J->Outstanding;
  } else if (Ev.Outcome == "verified") {
    J->Agg += Ev.Stats;
    --J->Outstanding;
  } else { // timeout: yielded for a steal, stopped, or budget expiry
    std::optional<SearchCheckpoint> Cp =
        deserializeCheckpoint(Ev.CheckpointText);
    if (Pruned) {
      // A DFS-later shard can only find DFS-later witnesses: its partial
      // work is counted and its frontier dropped.
      J->Agg += Ev.Stats;
      --J->Outstanding;
    } else if (J->StopRequested) {
      J->Remnants.push_back(Cp ? std::move(*Cp) : std::move(Sh.Cp));
      --J->Outstanding;
    } else if (!Cp || Cp->Open.empty()) {
      // Unparseable or empty frontier from a timeout (should not happen):
      // replay the original shard — determinism makes replay safe.
      Sh.Id = NextShardId++;
      requeueFront(std::move(Sh));
    } else if (WasYield) {
      // The steal: split the yielded frontier across the idle seats.
      size_t Idle = 0;
      for (const auto &SlotPtr : Slots)
        if (!SlotPtr->Busy && !SlotPtr->Broken)
          ++Idle;
      size_t Pieces = std::min(Idle + 1, Cp->Open.size());
      if (Pieces <= 1) {
        Shard Back;
        Back.Id = NextShardId++;
        Back.Job = J->Id;
        Back.Cp = std::move(*Cp);
        Back.StealBackoffUntil = now() + 4 * Config.StealAfterSeconds;
        requeueFront(std::move(Back));
      } else {
        std::vector<SearchCheckpoint> Parts = splitCheckpoint(*Cp, Pieces);
        for (size_t P = Parts.size(); P-- > 0;) {
          Shard Piece;
          Piece.Id = NextShardId++;
          Piece.Job = J->Id;
          Piece.Cp = std::move(Parts[P]);
          Queue.push_front(std::move(Piece));
        }
        J->Outstanding += static_cast<long>(Pieces) - 1;
        Counters.Steals += static_cast<long>(Pieces) - 1;
        J->Report.Steals += static_cast<long>(Pieces) - 1;
      }
    } else if (J->DeadlineAt > 0 && now() >= J->DeadlineAt - 0.01) {
      // The worker's budget ran out a beat before the coordinator's
      // deadline check: same thing.
      J->Remnants.push_back(std::move(*Cp));
      --J->Outstanding;
    } else {
      // Spurious early return (conservative worker budget): continue it.
      Shard Back;
      Back.Id = NextShardId++;
      Back.Job = J->Id;
      Back.Cp = std::move(*Cp);
      requeueFront(std::move(Back));
    }
  }
  maybeFinish(*J);
}

void FleetCoordinator::handleWorkerDeath(size_t SlotIdx) {
  Slot &S = *Slots[SlotIdx];
  if (S.Proc)
    S.Proc->kill();
  S.Proc.reset();
  S.LoadedNets.clear();
  ++Counters.WorkerRestarts;
  if (++S.ConsecutiveDeaths >= BrokenSlotDeaths)
    S.Broken = true;
  if (S.Busy) {
    // The dead worker's outstanding shard is requeued verbatim: replaying
    // it recomputes exactly what the lost worker would have computed, so
    // no subtree is lost and no verdict fabricated.
    if (JobRec *J = findJob(S.Current.Job))
      ++J->Report.Restarts;
    S.Busy = false;
    S.YieldRequested = S.StopSent = false;
    Shard Sh = std::move(S.Current);
    Sh.Id = NextShardId++;
    requeueFront(std::move(Sh));
  }
}

void FleetCoordinator::requeueFront(Shard &&S) { Queue.push_front(std::move(S)); }

void FleetCoordinator::resolveAsRemnant(JobRec &J, Shard &&S) {
  J.Remnants.push_back(std::move(S.Cp));
  --J.Outstanding;
}

void FleetCoordinator::pruneLaterShards(JobRec &J) {
  // Queued DFS-later shards are dropped outright (their base stats are
  // still counted: splitCheckpoint keeps the accumulated stats on one
  // shard of the chain, so this never double-counts).
  for (auto It = Queue.begin(); It != Queue.end();) {
    if (It->Job == J.Id && dfsPathPrecedes(J.CandKey, shardKey(It->Cp))) {
      J.Agg += It->Cp.Stats;
      --J.Outstanding;
      It = Queue.erase(It);
    } else {
      ++It;
    }
  }
  // Running DFS-later shards are cancelled; their timeout-done events will
  // arrive and be pruned above.
  for (auto &SlotPtr : Slots) {
    Slot &S = *SlotPtr;
    if (S.Busy && S.Current.Job == J.Id && !S.StopSent &&
        dfsPathPrecedes(J.CandKey, shardKey(S.Current.Cp))) {
      if (!S.YieldRequested && S.Proc)
        S.Proc->sendLine(formatCancelCommand(S.Current.Id));
      S.StopSent = true;
    }
  }
}

void FleetCoordinator::pollJobStops() {
  for (auto &JOwn : Jobs) {
    JobRec &J = *JOwn;
    if (J.Done || J.StopRequested)
      continue;
    bool Deadline = J.DeadlineAt > 0 && now() >= J.DeadlineAt;
    bool Cancelled = J.Cfg.CancelRequested && J.Cfg.CancelRequested();
    if (!Deadline && !Cancelled)
      continue;
    J.StopRequested = true;
    for (auto It = Queue.begin(); It != Queue.end();) {
      if (It->Job == J.Id) {
        resolveAsRemnant(J, std::move(*It));
        It = Queue.erase(It);
      } else {
        ++It;
      }
    }
    for (auto &SlotPtr : Slots) {
      Slot &S = *SlotPtr;
      if (S.Busy && S.Current.Job == J.Id && !S.StopSent) {
        if (!S.YieldRequested && S.Proc)
          S.Proc->sendLine(formatCancelCommand(S.Current.Id));
        S.StopSent = true;
      }
    }
    maybeFinish(J);
  }
}

void FleetCoordinator::maybeFinish(JobRec &J) {
  if (!J.Done && J.Outstanding == 0) {
    J.Done = true;
    JobCv.notify_all();
  }
}

void FleetCoordinator::dispatchShards() {
  size_t Guard = 0;
  while (!Queue.empty() && Guard++ < Slots.size() * 4 + 16) {
    JobRec *J = findJob(Queue.front().Job);
    if (!J || J->Done) {
      Queue.pop_front();
      continue;
    }
    if (Queue.front().Cp.Open.empty()) {
      // Nothing left to search in this shard: trivially verified.
      J->Agg += Queue.front().Cp.Stats;
      Queue.pop_front();
      --J->Outstanding;
      maybeFinish(*J);
      continue;
    }
    if (J->StopRequested) {
      resolveAsRemnant(*J, std::move(Queue.front()));
      Queue.pop_front();
      maybeFinish(*J);
      continue;
    }

    // Find (or revive) an idle seat.
    Slot *Seat = nullptr;
    size_t SeatIdx = 0;
    bool AnyUsable = false;
    for (size_t I = 0; I < Slots.size() && !Seat; ++I) {
      Slot &S = *Slots[I];
      if (S.Busy || S.Broken)
        continue;
      AnyUsable = true;
      if (!S.Proc || !S.Proc->channelOpen()) {
        auto P = std::make_unique<WorkerProcess>();
        std::vector<std::string> Args;
        if (!Config.PolicyPath.empty()) {
          Args.push_back("--policy");
          Args.push_back(Config.PolicyPath);
        }
        std::string Err;
        if (!P->spawn(Config.WorkerBinary, Args, &Err)) {
          std::fprintf(stderr, "charon-fleet: spawn failed: %s\n",
                       Err.c_str());
          if (++S.ConsecutiveDeaths >= BrokenSlotDeaths)
            S.Broken = true;
          continue;
        }
        S.Proc = std::move(P);
        S.LoadedNets.clear();
      }
      Seat = &S;
      SeatIdx = I;
    }
    if (!Seat) {
      bool AllBroken = true;
      for (const auto &S : Slots)
        if (!S->Broken)
          AllBroken = false;
      (void)AnyUsable;
      if (AllBroken) {
        // Every seat is unusable (worker binary cannot run): drain the
        // queue in-process so jobs still terminate with correct verdicts.
        Shard S = std::move(Queue.front());
        Queue.pop_front();
        runShardInline(std::move(S));
        continue;
      }
      break; // seats exist but all are busy
    }

    Shard S = std::move(Queue.front());
    Queue.pop_front();
    if (!Seat->LoadedNets.count(J->NetFp)) {
      if (!Seat->Proc->sendLine(formatLoadCommand(J->NetFp, J->NetText))) {
        requeueFront(std::move(S));
        handleWorkerDeath(SeatIdx);
        continue;
      }
      // Optimistic: a load failure surfaces as an error event or EOF.
      Seat->LoadedNets.insert(J->NetFp);
    }
    RunSpec Spec = J->Spec;
    Spec.Shard = S.Id;
    Spec.CheckpointText = serializeCheckpoint(S.Cp);
    Spec.BudgetSeconds =
        J->DeadlineAt > 0 ? std::max(0.01, J->DeadlineAt - now()) : -1.0;
    if (!Seat->Proc->sendLine(formatRunCommand(Spec))) {
      requeueFront(std::move(S));
      handleWorkerDeath(SeatIdx);
      continue;
    }
    Seat->Busy = true;
    Seat->Current = std::move(S);
    Seat->RunStart = now();
    Seat->YieldRequested = Seat->StopSent = false;
    ++TotalDispatches;
    ++Counters.ShardsDispatched;
    ++J->Report.Shards;
    if (Config.ChaosKillAfterDispatches >= 0 && !ChaosFired &&
        TotalDispatches > Config.ChaosKillAfterDispatches) {
      ChaosFired = true;
      Seat->Proc->kill(); // the death sweep requeues the shard next tick
    }
  }
}

void FleetCoordinator::maybeSteal() {
  if (!Config.EnableStealing || !Queue.empty())
    return;
  bool AnyIdle = false;
  for (const auto &S : Slots)
    if (!S->Busy && !S->Broken)
      AnyIdle = true;
  if (!AnyIdle)
    return;
  double Now = now();
  Slot *Victim = nullptr;
  for (auto &SlotPtr : Slots) {
    Slot &S = *SlotPtr;
    if (!S.Busy || S.YieldRequested || S.StopSent)
      continue;
    if (Now - S.RunStart < Config.StealAfterSeconds)
      continue;
    if (Now < S.Current.StealBackoffUntil)
      continue;
    if (!Victim || S.RunStart < Victim->RunStart)
      Victim = &S;
  }
  if (!Victim || !Victim->Proc)
    return;
  if (Victim->Proc->sendLine(formatCancelCommand(Victim->Current.Id)))
    Victim->YieldRequested = true;
}

bool FleetCoordinator::runShardInline(Shard &&S) {
  JobRec *J = findJob(S.Job);
  if (!J || J->Done)
    return false;
  VerifierConfig Cfg = J->Cfg;
  Cfg.TimeLimitSeconds =
      J->DeadlineAt > 0 ? std::max(0.01, J->DeadlineAt - now()) : -1.0;
  Cfg.EmitCertificate = false; // certificates are composed at job level
  Verifier V(*J->Net, Policy, Cfg);
  VerifyResult R = V.verify(*J->Prop, &S.Cp);

  const std::vector<uint8_t> &Key = shardKey(S.Cp);
  bool Pruned = J->HasCand && dfsPathPrecedes(J->CandKey, Key);
  switch (R.Result) {
  case Outcome::Falsified:
    if (!J->HasCand || dfsPathPrecedes(Key, J->CandKey)) {
      J->HasCand = true;
      J->CandKey = Key;
      J->CandCex.assign(R.Counterexample.data(),
                        R.Counterexample.data() + R.Counterexample.size());
      J->CandObj = R.ObjectiveAtCex;
      pruneLaterShards(*J);
    }
    J->Agg += R.Stats;
    break;
  case Outcome::Verified:
    J->Agg += R.Stats;
    break;
  case Outcome::Timeout:
    if (Pruned)
      J->Agg += R.Stats;
    else if (R.Checkpoint)
      J->Remnants.push_back(*R.Checkpoint);
    else
      J->Remnants.push_back(std::move(S.Cp));
    break;
  }
  --J->Outstanding;
  maybeFinish(*J);
  return true;
}
