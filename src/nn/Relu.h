//===- Relu.h - Rectified linear unit activation ----------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Element-wise ReLU(x) = max(x, 0), the activation the paper's networks use
/// throughout (Sec. 2.1). Now a thin specialization of ActivationLayer; the
/// fused batch kernels live on the ReLU path of the base class.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_NN_RELU_H
#define CHARON_NN_RELU_H

#include "nn/Activation.h"

namespace charon {

/// Element-wise rectified linear unit.
class ReluLayer : public ActivationLayer {
public:
  explicit ReluLayer(size_t N) : ActivationLayer(ActivationKind::Relu, N) {}
};

} // namespace charon

#endif // CHARON_NN_RELU_H
