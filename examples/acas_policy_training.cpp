//===- acas_policy_training.cpp - The training phase of Sec. 4.2 --------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Reproduces the paper's training workflow (Sec. 6): train a verification
// policy on 12 robustness properties of an ACAS-Xu-style collision
// avoidance network using Bayesian optimization over theta, then save the
// learned policy for the deployment phase (the bench harnesses load it).
//
//===----------------------------------------------------------------------===//

#include "core/PolicyIo.h"
#include "core/PolicyTrainer.h"
#include "data/Benchmarks.h"
#include "support/Random.h"

#include <cstdio>

using namespace charon;

int main(int Argc, char **Argv) {
  // Budgets are laptop-scale stand-ins for the paper's 700 s per problem;
  // pass a different per-problem limit as argv[1] to train harder.
  double TimeLimit = Argc > 1 ? std::atof(Argv[1]) : 1.0;

  std::printf("== Training a verification policy on ACAS-like problems ==\n");
  BenchmarkSuite Suite = makeAcasSuite(/*Count=*/12, /*Seed=*/77);
  std::printf("network: %zu inputs -> %zu advisories, %zu properties\n\n",
              Suite.Net.inputSize(), Suite.Net.outputSize(),
              Suite.Properties.size());

  std::vector<TrainingProblem> Problems;
  for (const auto &Prop : Suite.Properties)
    Problems.push_back({&Suite.Net, Prop});

  PolicyTrainConfig Config;
  Config.TimeLimitSeconds = TimeLimit;
  Config.Penalty = 2.0; // the paper's p = 2 (footnote 4)
  Config.BayesOpt.InitialSamples = 6;
  Config.BayesOpt.Iterations = 10;

  Rng R(4242);
  PolicyTrainResult Result = trainPolicy(Problems, Config, R);

  std::printf("Bayesian optimization evaluations: %d\n", Result.Evaluations);
  std::printf("default-policy score: %.3f\n", Result.DefaultScore);
  std::printf("learned-policy score: %.3f (higher is better)\n",
              Result.BestScore);

  const char *Path = "networks/policy.txt";
  if (savePolicyFile(Result.Policy, Path))
    std::printf("saved learned policy to %s\n", Path);
  else
    std::printf("warning: could not save policy to %s\n", Path);

  // Sanity: the learned policy still decides every training problem.
  VerifierConfig VC;
  VC.TimeLimitSeconds = 4.0 * TimeLimit;
  Verifier V(Suite.Net, Result.Policy, VC);
  int Verified = 0, Falsified = 0, Timeouts = 0;
  for (const auto &Prop : Suite.Properties) {
    switch (V.verify(Prop).Result) {
    case Outcome::Verified:
      ++Verified;
      break;
    case Outcome::Falsified:
      ++Falsified;
      break;
    case Outcome::Timeout:
      ++Timeouts;
      break;
    }
  }
  std::printf("\ndeployment check on the 12 training properties: "
              "%d verified, %d falsified, %d timeouts\n",
              Verified, Falsified, Timeouts);
  return 0;
}
