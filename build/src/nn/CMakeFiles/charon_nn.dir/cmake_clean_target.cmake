file(REMOVE_RECURSE
  "libcharon_nn.a"
)
