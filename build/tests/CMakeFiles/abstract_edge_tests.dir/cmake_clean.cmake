file(REMOVE_RECURSE
  "CMakeFiles/abstract_edge_tests.dir/abstract/AbstractEdgeTests.cpp.o"
  "CMakeFiles/abstract_edge_tests.dir/abstract/AbstractEdgeTests.cpp.o.d"
  "abstract_edge_tests"
  "abstract_edge_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_edge_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
