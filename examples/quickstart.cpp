//===- quickstart.cpp - Five-minute tour of the Charon API --------------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Builds the paper's XOR network (Figure 3), states the robustness property
// of Example 3.1, and runs the full decision procedure both on a robust
// region (proof) and a non-robust one (counterexample) — the two verdicts
// Algorithm 1 can produce.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "nn/Dense.h"
#include "nn/Relu.h"

#include <cstdio>

using namespace charon;

namespace {

/// The XOR network of Figure 3 in the paper.
Network makeXorNetwork() {
  Network Net;
  Net.addLayer(std::make_unique<DenseLayer>(Matrix{{1.0, 1.0}, {1.0, 1.0}},
                                            Vector{0.0, -1.0}));
  Net.addLayer(std::make_unique<ReluLayer>(2));
  Net.addLayer(std::make_unique<DenseLayer>(Matrix{{-1.0, 2.0}, {1.0, -2.0}},
                                            Vector{1.0, 0.0}));
  Net.setName("xor");
  return Net;
}

void report(const Network &Net, const RobustnessProperty &Prop,
            const VerifyResult &R) {
  std::printf("property %-12s -> %s", Prop.Name.c_str(), toString(R.Result));
  if (R.Result == Outcome::Falsified) {
    std::printf("  counterexample = (");
    for (size_t I = 0; I < R.Counterexample.size(); ++I)
      std::printf("%s%.4f", I ? ", " : "", R.Counterexample[I]);
    std::printf(") classified as %zu", Net.classify(R.Counterexample));
  }
  std::printf("  [%ld PGD calls, %ld analyses, %ld splits, %.3fs]\n",
              R.Stats.PgdCalls, R.Stats.AnalyzeCalls, R.Stats.Splits,
              R.Stats.Seconds);
}

} // namespace

int main() {
  std::printf("== Charon quickstart: the XOR network of Figure 3 ==\n\n");

  Network Net = makeXorNetwork();
  std::printf("network implements XOR: %zu %zu %zu %zu\n\n",
              Net.classify(Vector{0.0, 0.0}), Net.classify(Vector{0.0, 1.0}),
              Net.classify(Vector{1.0, 0.0}), Net.classify(Vector{1.0, 1.0}));

  // The learned policy would normally come from PolicyTrainer; the default
  // hand-tuned policy is enough for this tiny example.
  Verifier V(Net, VerificationPolicy());

  // Example 3.1: ([0.3, 0.7]^2, class 1) — robust, provable with splits.
  RobustnessProperty Robust;
  Robust.Region = Box::uniform(2, 0.3, 0.7);
  Robust.TargetClass = 1;
  Robust.Name = "example-3.1";
  report(Net, Robust, V.verify(Robust));

  // Widening the region past the decision boundary makes it falsifiable:
  // PGD finds a concrete adversarial input (Sec. 3, Eq. 1).
  RobustnessProperty Broken;
  Broken.Region = Box::uniform(2, 0.1, 0.9);
  Broken.TargetClass = 1;
  Broken.Name = "wide-region";
  report(Net, Broken, V.verify(Broken));

  return 0;
}
