file(REMOVE_RECURSE
  "CMakeFiles/lp_tests.dir/lp/LpTests.cpp.o"
  "CMakeFiles/lp_tests.dir/lp/LpTests.cpp.o.d"
  "lp_tests"
  "lp_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
