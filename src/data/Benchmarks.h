//===- Benchmarks.h - Benchmark suites (networks + properties) ----*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the evaluation workload of Sec. 7: trained networks plus
/// brightening-attack robustness properties. A brightening attack on input
/// x with threshold tau perturbs exactly the pixels at or above tau, each
/// within [x_i, 1]:
///
///   I = { x' | forall i. (x_i >= tau and x_i <= x'_i <= 1) or x'_i = x_i }.
///
/// Networks are trained once and cached on disk (networks/<name>.net) so
/// every bench binary sees identical weights.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_DATA_BENCHMARKS_H
#define CHARON_DATA_BENCHMARKS_H

#include "core/Property.h"
#include "data/SyntheticImages.h"
#include "nn/Network.h"

#include <functional>
#include <string>
#include <vector>

namespace charon {
class Rng;

/// Brightening-attack input region for \p X at threshold \p Tau (Sec. 7.1).
Box brighteningRegion(const Vector &X, double Tau);

/// A network together with the properties to verify on it.
struct BenchmarkSuite {
  std::string Name;
  Network Net;
  std::vector<RobustnessProperty> Properties;
};

/// Parameters for building an image-classification suite.
struct SuiteConfig {
  std::string Name;                ///< e.g. "mnist_3x100"
  ImageDatasetConfig Data;         ///< dataset the network is trained on
  std::vector<size_t> HiddenSizes; ///< MLP shape; empty => LeNet conv net
  int NumProperties = 20;          ///< properties generated per suite
  double Tau = 0.75;               ///< brightening threshold
  int TrainEpochs = 30;            ///< SGD epochs
  uint64_t Seed = 11;              ///< training/property seed
  std::string CacheDir = "networks"; ///< trained-network cache directory
};

/// Builds (or loads from cache) the trained network and generates
/// brightening-attack properties on held-out samples. Each property's
/// target class is the network's own prediction on the unperturbed input,
/// matching the paper's setup where some properties hold and others are
/// falsifiable.
BenchmarkSuite makeImageSuite(const SuiteConfig &Config);

/// The seven evaluation suites of Sec. 7 (scaled-down analogues; see
/// EXPERIMENTS.md): mnist_3x100, mnist_6x100, mnist_9x200, cifar_3x100,
/// cifar_6x100, cifar_9x100 and the convolutional net. \p NumProperties
/// scales every suite uniformly.
std::vector<SuiteConfig> paperSuiteConfigs(int NumProperties);

/// Trains (or loads) the ACAS-like network used for policy training
/// (Sec. 6) and returns it plus \p Count robustness properties over random
/// encounter boxes of assorted sizes — the "12 properties of a network from
/// the ACAS Xu system" analogue.
BenchmarkSuite makeAcasSuite(int Count, uint64_t Seed,
                             const std::string &CacheDir = "networks");

} // namespace charon

#endif // CHARON_DATA_BENCHMARKS_H
