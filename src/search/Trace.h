//===- Trace.h - Structured proof-search trace events ------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-node observability for the proof-search engine: every node
/// expansion can emit one structured event through an optional sink in
/// VerifierConfig. The JSONL renderer writes one JSON object per line
/// (schema charon-trace/1):
///
/// \code
///   {"path":"01","depth":2,"diameter":0.125,"pgd_objective":0.031,
///    "domain":"Zonotope","disjuncts":1,"margin":-0.004,
///    "outcome":"split","seconds":0.0021}
/// \endcode
///
/// `path` is the node's split bits from the root ("-" for the root);
/// `outcome` is one of "falsified", "verified", "split", "aborted"
/// (deadline hit mid-expansion; the node stays open and re-expands on
/// resume). `domain`/`disjuncts` appear once pi_alpha ran, `margin` once
/// the abstract analysis completed; both are omitted otherwise.
///
/// CEGAR runs additionally emit one round-summary event per abstract
/// search (Kind == "cegar_round"), rendered with an explicit "kind" tag:
///
/// \code
///   {"kind":"cegar_round","round":1,"abstract_neurons":75,
///    "original_neurons":300,"spurious":1,"outcome":"spurious",
///    "seconds":0.014}
/// \endcode
///
/// with `outcome` one of "verified", "falsified" (candidate confirmed on
/// the original network), "spurious" (refining), "timeout". Node events
/// keep their tag-free schema, so existing charon-trace/1 consumers are
/// unaffected unless CEGAR is enabled.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_SEARCH_TRACE_H
#define CHARON_SEARCH_TRACE_H

#include "abstract/Analyzer.h"

#include <functional>
#include <iosfwd>
#include <string>

namespace charon {

/// One trace event: a node expansion by default, or a CEGAR round summary
/// when Kind is "cegar_round" (then only Round, AbstractNeurons,
/// OriginalNeurons, SpuriousCexes, Outcome, and Seconds are meaningful).
struct TraceEvent {
  const char *Kind = "node"; ///< "node" | "cegar_round"
  std::string Path;          ///< split bits from the root; "-" for the root
  int Depth = 0;             ///< refinement depth of the node
  double Diameter = 0.0;     ///< L2 diameter of the node's region
  double PgdObjective = 0.0; ///< F(x*) found by this node's search
  bool DomainChosen = false; ///< pi_alpha ran (Domain/Disjuncts valid)
  DomainSpec Domain;         ///< the chosen abstract domain
  bool MarginKnown = false;  ///< the abstract analysis completed
  double Margin = 0.0;       ///< its robustness margin
  const char *Outcome = "";  ///< node: "falsified" | "verified" | "split" |
                             ///< "aborted"; cegar_round: "verified" |
                             ///< "falsified" | "spurious" | "timeout"
  double Seconds = 0.0;      ///< wall-clock cost of this expansion/round
  int Round = 0;             ///< CEGAR round number (from 0)
  long AbstractNeurons = 0;  ///< hidden neurons of the round's abstract net
  long OriginalNeurons = 0;  ///< hidden neurons of the original network
  long SpuriousCexes = 0;    ///< spurious candidates seen so far
};

/// Expansion-event callback. Installed via VerifierConfig::Trace; may be
/// invoked concurrently from several worker threads, so sinks must be
/// thread-safe (makeJsonlTraceSink already is).
using TraceSink = std::function<void(const TraceEvent &)>;

/// Renders \p Event as one JSON object (no trailing newline).
std::string traceEventToJson(const TraceEvent &Event);

/// A thread-safe sink appending one JSON line per event to \p Os, which
/// must outlive the returned sink.
TraceSink makeJsonlTraceSink(std::ostream &Os);

} // namespace charon

#endif // CHARON_SEARCH_TRACE_H
