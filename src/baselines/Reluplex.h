//===- Reluplex.h - Complete LP branch-and-bound baseline ---------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete verifier in the spirit of Reluplex (Katz et al., CAV'17),
/// the paper's complete-solver baseline (Sec. 7.2). Reluplex extends
/// simplex with lazy ReLU case splits; we reproduce the same decision
/// procedure as branch-and-bound over ReLU activation phases:
///
///  * neurons proved stable by interval analysis are folded into the
///    symbolic affine encoding;
///  * undecided neurons get the exact triangle LP relaxation
///    (y >= 0, y >= x, y <= u(x - l)/(u - l));
///  * if the relaxation cannot prove the property, branch on the widest
///    undecided neuron (active: y = x, x >= 0 / inactive: y = 0, x <= 0);
///  * a leaf with all phases fixed is exact: an LP optimum above zero
///    yields a concrete counterexample, checked against the real network.
///
/// Complete but — exactly as the paper observes — slow: the case tree is
/// exponential in the number of unstable neurons.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_BASELINES_RELUPLEX_H
#define CHARON_BASELINES_RELUPLEX_H

#include "core/Property.h"
#include "core/Verifier.h"
#include "nn/Network.h"

namespace charon {

/// Reluplex-style solver settings.
struct ReluplexConfig {
  double TimeLimitSeconds = -1.0;
  long MaxNodes = 200000; ///< branch-and-bound node cap (then Timeout)
  /// Pre-solve symbolic-interval bound tightening. The original Reluplex
  /// (CAV'17) has no such pass — its per-node bounds come from the plain
  /// interval evaluation — so the paper-faithful default is off. Turning
  /// it on upgrades the baseline to a modern MILP-style verifier (the
  /// future-work direction Sec. 9 sketches); bench_fig14_complete reports
  /// both.
  bool SymbolicBoundTightening = false;
};

/// Result of a run. Counterexample is populated iff Result == Falsified
/// and is a true (concretely checked) counterexample.
struct ReluplexResult {
  Outcome Result = Outcome::Timeout;
  Vector Counterexample;
  long Nodes = 0;
  long LpSolves = 0;
  double Seconds = 0.0;
};

/// Runs the complete branch-and-bound verifier on the property. Networks
/// must be ReLU + affine only (no max-pool), matching the paper's exclusion
/// of the convolutional net from complete-tool comparisons.
ReluplexResult reluplexVerify(const Network &Net,
                              const RobustnessProperty &Prop,
                              const ReluplexConfig &Config);

} // namespace charon

#endif // CHARON_BASELINES_RELUPLEX_H
