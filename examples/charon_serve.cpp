//===- charon_serve.cpp - Batch verification service driver -------------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Drives the verification service from a JSON-lines request file (or stdin):
// each input line names a network file and a robustness query; each output
// line reports the verdict, timing, cache-hit flag, and counterexample.
// Networks repeated across requests are loaded once (registry dedup) and
// repeated or subsumed queries are answered from the result cache.
//
//   charon_serve [requests.jsonl] [options]
//
// Options:
//   --workers <n>     worker threads (default: hardware concurrency)
//   --cache <n>       result-cache capacity in entries (default 4096)
//   --no-cache        disable the result cache
//   --policy <file>   learned policy (default: built-in policy)
//   --quiet           suppress the stderr summary
//
//===----------------------------------------------------------------------===//

#include "core/PolicyIo.h"
#include "service/RequestIo.h"
#include "service/VerificationService.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace charon;

namespace {

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [requests.jsonl] [--workers N] [--cache N] "
               "[--no-cache] [--policy F] [--quiet]\n",
               Argv0);
  std::exit(2);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string RequestPath;
  std::string PolicyPath;
  ServiceConfig SC;
  bool Quiet = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--workers") && I + 1 < Argc)
      SC.Workers = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--cache") && I + 1 < Argc)
      SC.CacheCapacity = static_cast<size_t>(std::atol(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--no-cache"))
      SC.EnableCache = false;
    else if (!std::strcmp(Argv[I], "--policy") && I + 1 < Argc)
      PolicyPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--quiet"))
      Quiet = true;
    else if (Argv[I][0] != '-' && RequestPath.empty())
      RequestPath = Argv[I];
    else
      usage(Argv[0]);
  }

  VerificationPolicy Policy;
  if (!PolicyPath.empty()) {
    if (auto P = loadPolicyFile(PolicyPath))
      Policy = *P;
    else
      std::fprintf(stderr, "warning: bad policy file %s, using default\n",
                   PolicyPath.c_str());
  }

  std::ifstream File;
  std::istream *In = &std::cin;
  if (!RequestPath.empty()) {
    File.open(RequestPath);
    if (!File) {
      std::fprintf(stderr, "error: cannot open %s\n", RequestPath.c_str());
      return 2;
    }
    In = &File;
  }

  VerificationService Service(Policy, SC);

  // Parse every request up front so malformed lines are rejected before
  // any work starts, then run the whole file as one batch.
  std::vector<JobRequest> Jobs;
  std::vector<ServiceRequest> Requests;
  std::string Line;
  int LineNo = 0;
  int BadLines = 0;
  while (std::getline(*In, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::string Error;
    auto Req = parseRequestLine(Line, &Error);
    if (!Req) {
      std::fprintf(stderr, "error: line %d: %s\n", LineNo, Error.c_str());
      ++BadLines;
      continue;
    }
    auto Net = Service.registry().addFromFile(Req->Network);
    if (!Net) {
      std::fprintf(stderr, "error: line %d: cannot load network %s\n", LineNo,
                   Req->Network.c_str());
      ++BadLines;
      continue;
    }
    auto Prop = requestProperty(*Req);
    if (!Prop) {
      std::fprintf(stderr, "error: line %d: bad region\n", LineNo);
      ++BadLines;
      continue;
    }
    if (Prop->Region.dim() != Service.registry().network(*Net).inputSize() ||
        Req->Label >= Service.registry().network(*Net).outputSize()) {
      std::fprintf(stderr, "error: line %d: query does not match network\n",
                   LineNo);
      ++BadLines;
      continue;
    }
    JobRequest Job;
    Job.Net = *Net;
    Job.Prop = std::move(*Prop);
    Job.Config.TimeLimitSeconds = Req->BudgetSeconds;
    Job.Config.Delta = Req->Delta;
    Job.Priority = Req->Priority;
    Jobs.push_back(std::move(Job));
    Requests.push_back(std::move(*Req));
  }

  BatchReport Report = Service.runBatch(Jobs);

  for (size_t I = 0; I < Report.Outcomes.size(); ++I) {
    const JobOutcome &Out = Report.Outcomes[I];
    ServiceResponse Resp;
    Resp.Name = Jobs[I].Prop.Name;
    Resp.Network = Requests[I].Network;
    Resp.Result = Out.Result.Result;
    Resp.CacheHit = Out.CacheHit;
    Resp.Cancelled = Out.Cancelled;
    Resp.Seconds = Out.RunSeconds;
    if (Out.Result.Result == Outcome::Falsified)
      Resp.Counterexample = Out.Result.Counterexample;
    std::printf("%s\n", formatResponseLine(Resp).c_str());
  }

  if (!Quiet) {
    CacheStats CS = Service.cache().stats();
    std::fprintf(stderr,
                 "%zu jobs in %.3fs (%.1f jobs/s, %u workers): "
                 "%d verified, %d falsified, %d timeout; "
                 "cache %ld hits (%ld exact, %ld subsumed), %ld misses\n",
                 Report.Outcomes.size(), Report.WallSeconds,
                 Report.jobsPerSecond(), Service.workers(), Report.Verified,
                 Report.Falsified, Report.Timeout, CS.hits(), CS.ExactHits,
                 CS.SubsumptionHits, CS.Misses);
  }
  return BadLines ? 2 : (Report.Timeout ? 1 : 0);
}
