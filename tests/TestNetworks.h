//===- TestNetworks.h - Shared paper-example networks for tests --*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worked-example networks from the paper, shared across test suites.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_TESTS_TESTNETWORKS_H
#define CHARON_TESTS_TESTNETWORKS_H

#include "nn/Dense.h"
#include "nn/Network.h"
#include "nn/Relu.h"

namespace charon {
namespace testing_nets {

/// The XOR network of Figure 3 / Example 2.1. Weights reconstructed from
/// the figure and the traced evaluation: [0 0] -> affine [0 -1] -> ReLU
/// [0 0] -> [1 0] (class 0), and [0 1], [1 0] -> class 1, [1 1] -> class 0.
inline Network makeXorNetwork() {
  Network Net;
  Net.addLayer(std::make_unique<DenseLayer>(Matrix{{1.0, 1.0}, {1.0, 1.0}},
                                            Vector{0.0, -1.0}));
  Net.addLayer(std::make_unique<ReluLayer>(2));
  Net.addLayer(std::make_unique<DenseLayer>(Matrix{{-1.0, 2.0}, {1.0, -2.0}},
                                            Vector{1.0, 0.0}));
  return Net;
}

/// The two-layer network of Example 2.2. On [-1, 1] the output is
/// [a+1, a+2] for a = ReLU(2x+1) in [0, 3], so every point is class 1; at
/// x = 2 the output is [8, 6], class 0. (The paper's printed N(0) = [1 3]
/// is a typo for [2 3]: its own closed form [a+1, a+2] gives a = 1 at 0.)
inline Network makeExample22Network() {
  Network Net;
  Net.addLayer(
      std::make_unique<DenseLayer>(Matrix{{1.0}, {2.0}}, Vector{-1.0, 1.0}));
  Net.addLayer(std::make_unique<ReluLayer>(2));
  Net.addLayer(std::make_unique<DenseLayer>(Matrix{{2.0, 1.0}, {-1.0, 1.0}},
                                            Vector{1.0, 2.0}));
  return Net;
}

/// The network of Example 2.3 / Figure 4 (class A = 0, class B = 1; the
/// property is that every x in [0,1]^2 is classified B).
inline Network makeExample23Network() {
  Network Net;
  Net.addLayer(std::make_unique<DenseLayer>(Matrix{{1.0, -3.0}, {0.0, 3.0}},
                                            Vector{1.0, 1.0}));
  Net.addLayer(std::make_unique<ReluLayer>(2));
  Net.addLayer(std::make_unique<DenseLayer>(Matrix{{1.0, 1.1}, {-1.0, 1.0}},
                                            Vector{-3.0, 1.2}));
  return Net;
}

} // namespace testing_nets
} // namespace charon

#endif // CHARON_TESTS_TESTNETWORKS_H
