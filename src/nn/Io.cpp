//===- Io.cpp - Network (de)serialization -----------------------------------===//

#include "nn/Io.h"

#include "nn/Activation.h"
#include "nn/AvgPool2D.h"
#include "nn/Conv2D.h"
#include "nn/Dense.h"
#include "nn/Flatten.h"
#include "nn/MaxPool2D.h"
#include "nn/Relu.h"
#include "nn/Residual.h"
#include "support/Check.h"

#include <fstream>
#include <iomanip>
#include <sstream>

using namespace charon;

namespace {

void saveLayer(const Layer &L, std::ostream &Os) {
  switch (L.kind()) {
  case LayerKind::Dense: {
    const auto &D = static_cast<const DenseLayer &>(L);
    Os << "dense " << D.inputSize() << " " << D.outputSize() << "\n";
    const Matrix &W = D.weights();
    for (size_t R = 0; R < W.rows(); ++R) {
      for (size_t C = 0; C < W.cols(); ++C)
        Os << W(R, C) << " ";
      Os << "\n";
    }
    for (size_t R = 0; R < D.bias().size(); ++R)
      Os << D.bias()[R] << " ";
    Os << "\n";
    break;
  }
  case LayerKind::Relu:
    Os << "relu " << L.inputSize() << "\n";
    break;
  case LayerKind::Sigmoid:
    Os << "sigmoid " << L.inputSize() << "\n";
    break;
  case LayerKind::Tanh:
    Os << "tanh " << L.inputSize() << "\n";
    break;
  case LayerKind::Conv2D: {
    const auto &C = static_cast<const Conv2DLayer &>(L);
    const TensorShape &In = C.inputShape();
    Os << "conv " << In.Channels << " " << In.Height << " " << In.Width << " "
       << C.outputShape().Channels << " " << C.kernelHeight() << " "
       << C.kernelWidth() << " " << C.stride() << " " << C.padding() << "\n";
    for (int Oc = 0; Oc < C.outputShape().Channels; ++Oc)
      for (int Ic = 0; Ic < In.Channels; ++Ic)
        for (int Ky = 0; Ky < C.kernelHeight(); ++Ky)
          for (int Kx = 0; Kx < C.kernelWidth(); ++Kx)
            Os << C.kernelAt(Oc, Ic, Ky, Kx) << " ";
    Os << "\n";
    for (size_t R = 0; R < C.bias().size(); ++R)
      Os << C.bias()[R] << " ";
    Os << "\n";
    break;
  }
  case LayerKind::MaxPool2D: {
    const auto &M = static_cast<const MaxPool2DLayer &>(L);
    const TensorShape &In = M.inputShape();
    Os << "maxpool " << In.Channels << " " << In.Height << " " << In.Width
       << " " << M.poolHeight() << " " << M.poolWidth() << " " << M.stride()
       << "\n";
    break;
  }
  case LayerKind::AvgPool2D: {
    const auto &A = static_cast<const AvgPool2DLayer &>(L);
    const TensorShape &In = A.inputShape();
    Os << "avgpool " << In.Channels << " " << In.Height << " " << In.Width
       << " " << A.poolHeight() << " " << A.poolWidth() << " " << A.stride()
       << "\n";
    break;
  }
  case LayerKind::Flatten:
    Os << "flatten " << L.inputSize() << "\n";
    break;
  case LayerKind::Residual: {
    const Network *Body = L.residualBody();
    Os << "residual " << Body->numLayers() << "\n";
    for (size_t I = 0, E = Body->numLayers(); I < E; ++I)
      saveLayer(Body->layer(I), Os);
    break;
  }
  }
}

std::unique_ptr<Layer> loadLayer(std::istream &Is) {
  std::string Kind;
  if (!(Is >> Kind))
    return nullptr;
  if (Kind == "dense") {
    size_t In = 0, Out = 0;
    if (!(Is >> In >> Out))
      return nullptr;
    Matrix W(Out, In);
    for (size_t R = 0; R < Out; ++R)
      for (size_t C = 0; C < In; ++C)
        if (!(Is >> W(R, C)))
          return nullptr;
    Vector B(Out);
    for (size_t R = 0; R < Out; ++R)
      if (!(Is >> B[R]))
        return nullptr;
    return std::make_unique<DenseLayer>(std::move(W), std::move(B));
  }
  if (Kind == "relu") {
    size_t N = 0;
    if (!(Is >> N))
      return nullptr;
    return std::make_unique<ReluLayer>(N);
  }
  if (Kind == "sigmoid") {
    size_t N = 0;
    if (!(Is >> N))
      return nullptr;
    return std::make_unique<SigmoidLayer>(N);
  }
  if (Kind == "tanh") {
    size_t N = 0;
    if (!(Is >> N))
      return nullptr;
    return std::make_unique<TanhLayer>(N);
  }
  if (Kind == "conv") {
    TensorShape In;
    int OutC = 0, KH = 0, KW = 0, S = 0, P = 0;
    if (!(Is >> In.Channels >> In.Height >> In.Width >> OutC >> KH >> KW >>
          S >> P))
      return nullptr;
    if (In.Channels <= 0 || In.Height <= 0 || In.Width <= 0 || OutC <= 0 ||
        KH <= 0 || KW <= 0 || S <= 0 || P < 0)
      return nullptr;
    auto C = std::make_unique<Conv2DLayer>(In, OutC, KH, KW, S, P);
    for (int Oc = 0; Oc < OutC; ++Oc)
      for (int Ic = 0; Ic < In.Channels; ++Ic)
        for (int Ky = 0; Ky < KH; ++Ky)
          for (int Kx = 0; Kx < KW; ++Kx)
            if (!(Is >> C->kernelAt(Oc, Ic, Ky, Kx)))
              return nullptr;
    for (size_t R = 0; R < C->bias().size(); ++R)
      if (!(Is >> C->bias()[R]))
        return nullptr;
    return C;
  }
  if (Kind == "maxpool" || Kind == "avgpool") {
    TensorShape In;
    int PH = 0, PW = 0, S = 0;
    if (!(Is >> In.Channels >> In.Height >> In.Width >> PH >> PW >> S))
      return nullptr;
    if (In.Channels <= 0 || In.Height <= 0 || In.Width <= 0 || PH <= 0 ||
        PW <= 0 || S <= 0 || In.Height < PH || In.Width < PW)
      return nullptr;
    if (Kind == "maxpool")
      return std::make_unique<MaxPool2DLayer>(In, PH, PW, S);
    return std::make_unique<AvgPool2DLayer>(In, PH, PW, S);
  }
  if (Kind == "flatten") {
    size_t N = 0;
    if (!(Is >> N))
      return nullptr;
    return std::make_unique<FlattenLayer>(N);
  }
  if (Kind == "residual") {
    size_t BodyLayers = 0;
    if (!(Is >> BodyLayers) || BodyLayers == 0)
      return nullptr;
    Network Body;
    for (size_t I = 0; I < BodyLayers; ++I) {
      std::unique_ptr<Layer> L = loadLayer(Is);
      if (!L)
        return nullptr;
      if (I > 0 && L->inputSize() != Body.outputSize())
        return nullptr;
      Body.addLayer(std::move(L));
    }
    if (Body.inputSize() != Body.outputSize())
      return nullptr; // Identity skip needs matching sizes.
    for (size_t I = 0, E = Body.numLayers(); I < E; ++I) {
      const Layer &L = Body.layer(I);
      if (!L.affineForm() && !L.activationKind() && !L.isIdentity())
        return nullptr; // Body restricted to analyzable layer shapes.
    }
    return std::make_unique<ResidualLayer>(std::move(Body));
  }
  return nullptr;
}

} // namespace

void charon::saveNetwork(const Network &Net, std::ostream &Os) {
  Os << "charon-network 1 " << Net.numLayers() << "\n";
  Os << std::setprecision(17);
  for (size_t I = 0, E = Net.numLayers(); I < E; ++I)
    saveLayer(Net.layer(I), Os);
}

std::optional<Network> charon::loadNetwork(std::istream &Is) {
  std::string Magic;
  int Version = 0;
  size_t NumLayers = 0;
  if (!(Is >> Magic >> Version >> NumLayers) || Magic != "charon-network" ||
      Version != 1)
    return std::nullopt;

  Network Net;
  for (size_t I = 0; I < NumLayers; ++I) {
    std::unique_ptr<Layer> L = loadLayer(Is);
    if (!L)
      return std::nullopt;
    if (I > 0 && L->inputSize() != Net.outputSize())
      return std::nullopt;
    Net.addLayer(std::move(L));
  }
  return Net;
}

bool charon::saveNetworkFile(const Network &Net, const std::string &Path) {
  std::ofstream Os(Path);
  if (!Os)
    return false;
  saveNetwork(Net, Os);
  return static_cast<bool>(Os);
}

std::optional<Network> charon::loadNetworkFile(const std::string &Path) {
  std::ifstream Is(Path);
  if (!Is)
    return std::nullopt;
  return loadNetwork(Is);
}
