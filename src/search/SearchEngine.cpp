//===- SearchEngine.cpp - Explicit proof-tree search engine -------------------===//

#include "search/SearchEngine.h"

#include "abstract/Analyzer.h"
#include "cert/Certificate.h"
#include "core/Digest.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <set>

using namespace charon;

namespace {

/// Orders node ids by the sequential expansion order (see
/// ProofTree::dfsPrecedes). Used for the open-node set so the DFS-least
/// open node is always OpenSet.begin().
struct DfsLess {
  const ProofTree *Tree;
  bool operator()(NodeId A, NodeId B) const { return Tree->dfsPrecedes(A, B); }
};

} // namespace

/// Outcome of expanding one node, staged off to the side so the caller can
/// commit it atomically under the search-state lock — or discard it wholesale
/// when the abstract analysis was aborted by the deadline (Kind == Aborted),
/// which is what makes checkpoint/resume replay the uninterrupted run.
struct SearchEngine::Expansion {
  enum class Kind : uint8_t { Falsified, Verified, Split, Aborted };
  Kind Result = Kind::Aborted;
  Vector Cex;                ///< Falsified: the (delta-)counterexample
  double CexObjective = 0.0; ///< Falsified: F at the counterexample
  SplitChoice Split;         ///< Split: pi_I's hyperplane
  Vector XStar;              ///< Split: witness handed to the children
  DomainSpec Domain;         ///< pi_alpha's choice (valid iff DomainChosen)
  bool DomainChosen = false;
  double Margin = 0.0;       ///< analysis margin (valid iff MarginKnown)
  bool MarginKnown = false;
  double PgdObjective = 0.0; ///< F(x*) of this node's search
  VerifyStats Stats;         ///< this node's counters (discarded on Aborted)
  double Seconds = 0.0;      ///< node wall-clock, for the trace event
};

/// Everything one run() shares between the drivers: the tree, the frontier,
/// the DFS-ordered open set, the falsification candidate, and the committed
/// stats. Guarded by Mutex; Work is signaled whenever the frontier grows or
/// the done/in-flight state changes.
struct SearchEngine::SearchState {
  SearchState(const RobustnessProperty &P, const VerifierConfig &Config)
      : Prop(P), Budget(Config.TimeLimitSeconds), Tree(Config.Seed),
        Open(Config.SearchOrder, &Tree), OpenSet(DfsLess{&Tree}) {}

  const RobustnessProperty &Prop;
  Deadline Budget;
  Stopwatch Watch;

  std::mutex Mutex;
  std::condition_variable Work;
  ProofTree Tree;
  Frontier Open;
  /// Every Open-status node — scheduled or in flight — in DFS order, so
  /// begin() is the earliest node the sequential driver would still expand.
  std::set<NodeId, DfsLess> OpenSet;
  /// DFS-earliest falsified node so far (InvalidNodeId when none). Only
  /// confirmed — made the final verdict — once no open node DFS-precedes it.
  NodeId BestFalsified = InvalidNodeId;
  Vector BestCex;
  double BestObjective = 0.0;
  /// Committed stats: the resume checkpoint's counters plus every committed
  /// expansion. Seconds stays at the checkpoint's base; finish() adds Watch.
  VerifyStats Stats;
  bool TimedOut = false; ///< deadline, cancellation, or depth cap hit
  bool Done = false;     ///< no further scheduling; workers drain
  unsigned InFlight = 0; ///< expansions currently outside the lock
  /// Restored from a checkpoint: the tree holds only the detached frontier
  /// (no materialized root), so a tree certificate cannot be built.
  bool Resumed = false;
};

SearchEngine::SearchEngine(const Network &N, const VerificationPolicy &P,
                           const VerifierConfig &C)
    : Net(N), Policy(P), Config(C) {
  assert(Config.Delta > 0.0 &&
         "Eq. 4 requires delta > 0 for the termination guarantee");
}

SearchEngine::Expansion
SearchEngine::expandNode(const RobustnessProperty &Prop, const Box &Region,
                         const Vector *Warm, uint64_t Seed,
                         const Deadline *Budget) const {
  Stopwatch NodeWatch;
  Expansion E;
  Rng R(Seed);
  size_t K = Prop.TargetClass;
  RobustnessProperty Sub{Region, K, Prop.Name};

  // Line 2: optimization-based counterexample search (Eq. 1). The search
  // stops at the Eq. 4 refutation bound rather than the default
  // true-counterexample bound 0, and seeds its deterministic chain with the
  // parent node's witness when refinement hands one down.
  Vector XStar;
  double FStar;
  if (Config.UseCounterexampleSearch) {
    ++E.Stats.PgdCalls;
    PgdConfig Search = Config.Pgd;
    Search.EarlyStopObjective = Config.Delta;
    PgdResult P = Config.Optimizer == CexSearchKind::Pgd
                      ? pgdMinimize(Net, Region, K, Search, R, Warm)
                      : fgsmMinimize(Net, Region, K);
    XStar = std::move(P.X);
    FStar = P.Objective;
  } else {
    // Ablation mode: only probe the center point, so the delta-check (and
    // thus termination) survives, but no real search happens.
    XStar = Region.center();
    FStar = Net.objective(XStar, K);
  }
  E.PgdObjective = FStar;

  // Line 3 with Eq. 4: F(x*) <= delta refutes (delta-completeness).
  if (FStar <= Config.Delta) {
    E.Result = Expansion::Kind::Falsified;
    E.Cex = std::move(XStar);
    E.CexObjective = FStar;
    ++E.Stats.NodesExpanded;
    E.Seconds = NodeWatch.seconds();
    return E;
  }

  // Lines 5-7: pick a domain with pi_alpha and attempt a proof.
  DomainSpec Spec = Policy.chooseDomain(Net, Sub, XStar, FStar);
  E.Domain = Spec;
  E.DomainChosen = true;
  ++E.Stats.AnalyzeCalls;
  if (Spec.Base == BaseDomainKind::Interval)
    ++E.Stats.IntervalChoices;
  else
    ++E.Stats.ZonotopeChoices;
  E.Stats.DisjunctSum += Spec.Disjuncts;
  AnalysisResult Analysis =
      analyzeRobustness(Net, Region, K, Spec, Budget, Config.Precision);
  if (Analysis.TimedOut) {
    // The deadline cut the analysis short: discard the whole expansion so
    // the node stays open (and uncounted) in the checkpoint, and a resumed
    // run re-expands it exactly as the uninterrupted run would have.
    E.Result = Expansion::Kind::Aborted;
    E.Seconds = NodeWatch.seconds();
    return E;
  }
  E.Margin = Analysis.Margin;
  E.MarginKnown = true;
  if (Analysis.Verified) {
    E.Result = Expansion::Kind::Verified;
    ++E.Stats.NodesExpanded;
    E.Seconds = NodeWatch.seconds();
    return E;
  }

  // Optional Sec. 9 extension: once a subregion is small, hand it to a
  // complete procedure (a "perfectly precise domain") instead of splitting
  // further.
  if (Config.CompleteFallback &&
      Region.diameter() <= Config.CompleteFallbackDiameter) {
    switch (Config.CompleteFallback(Net, Region, K)) {
    case Outcome::Verified:
      E.Result = Expansion::Kind::Verified;
      ++E.Stats.NodesExpanded;
      E.Seconds = NodeWatch.seconds();
      return E;
    case Outcome::Falsified: {
      // Recover a concrete witness with an intensified search so the
      // delta-completeness contract holds; if it cannot be found, fall
      // through to ordinary splitting (sound either way).
      PgdConfig Intense = Config.Pgd;
      Intense.Steps = 4 * Config.Pgd.Steps;
      Intense.Restarts = 4 * Config.Pgd.Restarts;
      Intense.EarlyStopObjective = Config.Delta;
      PgdResult P = pgdMinimize(Net, Region, K, Intense, R, &XStar);
      if (P.Objective <= Config.Delta) {
        E.Result = Expansion::Kind::Falsified;
        E.Cex = std::move(P.X);
        E.CexObjective = P.Objective;
        ++E.Stats.NodesExpanded;
        E.Seconds = NodeWatch.seconds();
        return E;
      }
      break;
    }
    case Outcome::Timeout:
      break; // Fallback gave up; keep refining.
    }
  }

  // Line 8: neither refuted nor proved; ask pi_I how to split. The node's
  // best witness rides along so the children's searches don't rediscover
  // the descent direction from their centers.
  E.Result = Expansion::Kind::Split;
  E.Split = Policy.choosePartition(Net, Sub, XStar, FStar);
  E.XStar = std::move(XStar);
  ++E.Stats.Splits;
  ++E.Stats.NodesExpanded;
  E.Seconds = NodeWatch.seconds();
  return E;
}

SearchEngine::StepResult SearchEngine::runStep(SearchState &S) const {
  std::unique_lock<std::mutex> Lock(S.Mutex);
  NodeId Id = InvalidNodeId;
  while (true) {
    if (S.Done)
      return StepResult::Finished;
    if (!S.TimedOut && (S.Budget.expired() ||
                        (Config.CancelRequested && Config.CancelRequested())))
      S.TimedOut = true;
    if (S.TimedOut) {
      // Stop scheduling; in-flight expansions finish (their analyses abort
      // at the same deadline) before the run concludes.
      if (S.InFlight > 0)
        return StepResult::NoWork;
      S.Done = true;
      S.Work.notify_all();
      return StepResult::Finished;
    }
    // Confirm the falsification once no open node DFS-precedes it: that is
    // exactly when the sequential driver would have returned it, so the
    // final counterexample is scheduling-independent.
    if (S.BestFalsified != InvalidNodeId &&
        (S.OpenSet.empty() ||
         S.Tree.dfsPrecedes(S.BestFalsified, *S.OpenSet.begin()))) {
      S.Done = true;
      S.Work.notify_all();
      return StepResult::Finished;
    }
    if (S.Open.empty()) {
      if (S.InFlight > 0)
        return StepResult::NoWork;
      S.Done = true;
      S.Work.notify_all();
      return StepResult::Finished;
    }
    Id = S.Open.pop();
    // A DFS-later node cannot change the confirmed verdict; skip it.
    if (S.BestFalsified != InvalidNodeId &&
        S.Tree.dfsPrecedes(S.BestFalsified, Id)) {
      S.Tree.node(Id).Status = NodeStatus::Pruned;
      S.OpenSet.erase(Id);
      continue;
    }
    break;
  }

  ProofNode &Node = S.Tree.node(Id);
  Box Region = Node.Region;
  Vector Warm = Node.Warm;
  uint64_t Seed = Node.PathSeed;
  uint32_t Depth = Node.Depth;
  ++S.InFlight;
  Lock.unlock();

  Expansion E = expandNode(S.Prop, Region, Warm.empty() ? nullptr : &Warm,
                           Seed, &S.Budget);

  Lock.lock();
  --S.InFlight;
  ProofNode &N = S.Tree.node(Id);
  N.PgdObjective = E.PgdObjective;
  N.Domain = E.Domain;
  N.DomainChosen = E.DomainChosen;
  N.Margin = E.Margin;
  N.MarginKnown = E.MarginKnown;
  const char *TraceOutcome = "aborted";
  switch (E.Result) {
  case Expansion::Kind::Aborted:
    // Deadline mid-analysis: leave the node open and its stats uncommitted
    // so the checkpoint resumes it from scratch.
    S.TimedOut = true;
    break;
  case Expansion::Kind::Falsified:
    TraceOutcome = "falsified";
    N.Status = NodeStatus::Falsified;
    N.Warm = Vector();
    // The witness lives on the node (certificates record every falsified
    // leaf), and the DFS-earliest one additionally becomes the verdict's.
    N.Cex = std::move(E.Cex);
    N.CexObjective = E.CexObjective;
    S.OpenSet.erase(Id);
    E.Stats.MaxDepth = Depth;
    S.Stats += E.Stats;
    if (S.BestFalsified == InvalidNodeId ||
        S.Tree.dfsPrecedes(Id, S.BestFalsified)) {
      S.BestFalsified = Id;
      S.BestCex = N.Cex;
      S.BestObjective = E.CexObjective;
    }
    break;
  case Expansion::Kind::Verified:
    TraceOutcome = "verified";
    N.Status = NodeStatus::Verified;
    N.Warm = Vector();
    S.OpenSet.erase(Id);
    E.Stats.MaxDepth = Depth;
    S.Stats += E.Stats;
    break;
  case Expansion::Kind::Split: {
    TraceOutcome = "split";
    N.Status = NodeStatus::Split;
    N.Warm = Vector();
    S.OpenSet.erase(Id);
    E.Stats.MaxDepth = Depth;
    S.Stats += E.Stats;
    auto [Lower, Upper] = Region.split(E.Split.Dim, E.Split.Cut);
    // Record the hyperplane actually used: Box::split clamps the policy's
    // cut strictly inside the region, and certificates must re-prove the
    // tiling against the clamped value.
    N.SplitDim = E.Split.Dim;
    N.SplitCut = Lower.upper()[E.Split.Dim];
    auto [LId, UId] = S.Tree.addChildren(Id, std::move(Lower),
                                         std::move(Upper), E.XStar,
                                         E.PgdObjective);
    S.OpenSet.insert(LId);
    S.OpenSet.insert(UId);
    if (Depth + 1 > static_cast<uint32_t>(Config.MaxDepth)) {
      // Safety net beyond the theoretical bound: stop and report Timeout;
      // the children stay open so a resume under a larger cap continues.
      S.TimedOut = true;
    } else {
      // Upper before lower so the lower half pops first under Lifo — the
      // classic depth-first order.
      S.Open.push(UId);
      S.Open.push(LId);
    }
    break;
  }
  }
  std::string Path = S.Tree.pathString(Id);
  S.Work.notify_all();
  Lock.unlock();

  if (Config.Trace) {
    TraceEvent Event;
    Event.Path = std::move(Path);
    Event.Depth = static_cast<int>(Depth);
    Event.Diameter = Region.diameter();
    Event.PgdObjective = E.PgdObjective;
    Event.DomainChosen = E.DomainChosen;
    Event.Domain = E.Domain;
    Event.MarginKnown = E.MarginKnown;
    Event.Margin = E.Margin;
    Event.Outcome = TraceOutcome;
    Event.Seconds = E.Seconds;
    Config.Trace(Event);
  }
  return StepResult::Stepped;
}

VerifyResult SearchEngine::finish(SearchState &S,
                                  const RobustnessProperty &Prop) const {
  VerifyResult Result;
  Result.Stats = S.Stats;
  Result.Stats.Seconds += S.Watch.seconds();

  // Decided verdicts certify on request. A resumed run's tree holds only
  // the restored frontier, never the already-verified siblings, so it can
  // certify a falsification (one witness suffices) but not a Verified
  // verdict — that evidence lives in the pre-timeout run.
  auto AttachCertificate = [&](VerifyResult &R) {
    if (!Config.EmitCertificate)
      return;
    if (!S.Resumed) {
      if (auto Cert =
              buildTreeCertificate(Net, Prop, Config, R.Result, S.Tree))
        R.Certificate =
            std::make_shared<ProofCertificate>(std::move(*Cert));
    } else if (R.Result == Outcome::Falsified) {
      R.Certificate = std::make_shared<ProofCertificate>(
          buildFalsifiedCertificate(Net, Prop, Config, R.Counterexample,
                                    R.ObjectiveAtCex));
    }
  };

  if (S.BestFalsified != InvalidNodeId) {
    // A falsification always wins, even on an interrupted run where it is
    // not yet confirmed DFS-earliest: the counterexample is sound either
    // way, only its scheduling-independence needs a clean run.
    Result.Result = Outcome::Falsified;
    Result.Counterexample = std::move(S.BestCex);
    Result.ObjectiveAtCex = S.BestObjective;
    AttachCertificate(Result);
    return Result;
  }
  if (!S.TimedOut || S.OpenSet.empty()) {
    // No falsification and no open node left: the whole region tree is
    // verified, even when the deadline fired after the last expansion. A
    // Timeout verdict therefore always carries a non-empty frontier.
    Result.Result = Outcome::Verified;
    AttachCertificate(Result);
    return Result;
  }
  Result.Result = Outcome::Timeout;
  auto Cp = std::make_shared<SearchCheckpoint>();
  Cp->Order = Config.SearchOrder;
  Cp->NetworkFingerprint = fingerprintNetwork(Net);
  Cp->PropertyDigest = digestProperty(Prop);
  Cp->ConfigDigest = digestVerifierConfigSemantics(Config);
  Cp->Stats = Result.Stats;
  Cp->Open.reserve(S.OpenSet.size());
  for (NodeId Id : S.OpenSet) { // DFS-ascending by the set's comparator
    const ProofNode &N = S.Tree.node(Id);
    CheckpointNode Node;
    Node.Path = S.Tree.pathOf(Id);
    Node.Region = N.Region;
    Node.Warm = N.Warm;
    Node.Priority = N.Priority;
    Cp->Open.push_back(std::move(Node));
  }
  Result.Checkpoint = std::move(Cp);
  return Result;
}

VerifyResult SearchEngine::run(const RobustnessProperty &Prop,
                               const SearchCheckpoint *Resume,
                               ThreadPool *Pool) const {
  assert(Prop.Region.dim() == Net.inputSize() && "property/network mismatch");
  if (Pool) {
    // Pre-warm lazily built affine lowerings (e.g. convolution caches) so
    // the shared network is strictly read-only during the parallel phase.
    for (size_t I = 0, E = Net.numLayers(); I < E; ++I)
      (void)Net.layer(I).affineForm();
  }

  SearchState S(Prop, Config);

  bool Resumed = false;
  if (Resume && Resume->NetworkFingerprint == fingerprintNetwork(Net) &&
      Resume->PropertyDigest == digestProperty(Prop) &&
      Resume->ConfigDigest == digestVerifierConfigSemantics(Config) &&
      !Resume->Open.empty()) {
    // Rebuild the frontier. Checkpoints store open nodes DFS-ascending;
    // pushing in reverse leaves the DFS-least node on top of the Lifo
    // stack, recreating the interrupted run's exact schedule (BestFirst
    // reorders by priority regardless of push order).
    S.Stats = Resume->Stats;
    std::vector<NodeId> Ids;
    Ids.reserve(Resume->Open.size());
    for (const CheckpointNode &Node : Resume->Open)
      Ids.push_back(S.Tree.addDetached(Node.Path, Node.Region, Node.Warm,
                                       Node.Priority));
    for (auto It = Ids.rbegin(); It != Ids.rend(); ++It) {
      S.OpenSet.insert(*It);
      S.Open.push(*It);
    }
    Resumed = true;
  }
  S.Resumed = Resumed;
  if (!Resumed) {
    NodeId Root = S.Tree.addRoot(Prop.Region);
    S.OpenSet.insert(Root);
    S.Open.push(Root);
  }

  if (!Pool) {
    // NoWork is unreachable serially: InFlight is always zero when the
    // single driver thread re-enters runStep.
    while (runStep(S) != StepResult::Finished)
      ;
    return finish(S, Prop);
  }

  unsigned Workers = std::max(1u, Pool->size());
  for (unsigned W = 0; W < Workers; ++W) {
    Pool->submit([this, &S] {
      while (true) {
        switch (runStep(S)) {
        case StepResult::Finished:
          return;
        case StepResult::Stepped:
          break;
        case StepResult::NoWork: {
          std::unique_lock<std::mutex> Lock(S.Mutex);
          S.Work.wait(Lock, [&S] {
            return S.Done || S.InFlight == 0 ||
                   (!S.TimedOut && !S.Open.empty());
          });
          if (S.Done)
            return;
          break;
        }
        }
      }
    });
  }
  Pool->wait();
  return finish(S, Prop);
}
