//===- FleetProtocol.cpp - Coordinator/worker JSONL control channel -----------===//

#include "fleet/FleetProtocol.h"

#include "core/Digest.h"
#include "core/Property.h"
#include "support/JsonLine.h"

using namespace charon;
using json::appendEscaped;
using json::appendNumber;
using json::appendNumberArray;
using json::formatU64;
using json::parseU64;
using json::Value;

namespace {

bool setError(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

void appendStats(std::string &Out, const VerifyStats &S) {
  std::vector<double> A = {
      static_cast<double>(S.PgdCalls),
      static_cast<double>(S.AnalyzeCalls),
      static_cast<double>(S.Splits),
      static_cast<double>(S.MaxDepth),
      static_cast<double>(S.IntervalChoices),
      static_cast<double>(S.ZonotopeChoices),
      static_cast<double>(S.DisjunctSum),
      static_cast<double>(S.NodesExpanded),
      static_cast<double>(S.CegarRounds),
      static_cast<double>(S.CegarSpuriousCexes),
      static_cast<double>(S.CegarFallbacks),
      static_cast<double>(S.CegarAbstractNeurons),
      S.Seconds};
  appendNumberArray(Out, A);
}

bool statsFromArray(const std::vector<double> &A, VerifyStats &S) {
  if (A.size() != 13)
    return false;
  S.PgdCalls = static_cast<long>(A[0]);
  S.AnalyzeCalls = static_cast<long>(A[1]);
  S.Splits = static_cast<long>(A[2]);
  S.MaxDepth = static_cast<long>(A[3]);
  S.IntervalChoices = static_cast<long>(A[4]);
  S.ZonotopeChoices = static_cast<long>(A[5]);
  S.DisjunctSum = static_cast<long>(A[6]);
  S.NodesExpanded = static_cast<long>(A[7]);
  S.CegarRounds = static_cast<long>(A[8]);
  S.CegarSpuriousCexes = static_cast<long>(A[9]);
  S.CegarFallbacks = static_cast<long>(A[10]);
  S.CegarAbstractNeurons = static_cast<long>(A[11]);
  S.Seconds = A[12];
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Command formatting
//===----------------------------------------------------------------------===//

std::string charon::formatLoadCommand(uint64_t Fingerprint,
                                      const std::string &NetworkText) {
  std::string Out = "{\"cmd\":\"load\",\"fingerprint\":";
  appendEscaped(Out, formatU64(Fingerprint));
  Out += ",\"network\":";
  appendEscaped(Out, NetworkText);
  Out.push_back('}');
  return Out;
}

std::string charon::formatRunCommand(const RunSpec &Spec) {
  std::string Out = "{\"cmd\":\"run\",\"shard\":";
  appendNumber(Out, static_cast<double>(Spec.Shard));
  Out += ",\"fingerprint\":";
  appendEscaped(Out, formatU64(Spec.Fingerprint));
  Out += ",\"label\":";
  appendNumber(Out, static_cast<double>(Spec.Label));
  Out += ",\"lower\":";
  appendNumberArray(Out, Spec.Lower);
  Out += ",\"upper\":";
  appendNumberArray(Out, Spec.Upper);
  Out += ",\"delta\":";
  appendNumber(Out, Spec.Delta);
  Out += ",\"budget\":";
  appendNumber(Out, Spec.BudgetSeconds);
  Out += ",\"maxdepth\":";
  appendNumber(Out, Spec.MaxDepth);
  Out += ",\"pgd_steps\":";
  appendNumber(Out, Spec.PgdSteps);
  Out += ",\"pgd_restarts\":";
  appendNumber(Out, Spec.PgdRestarts);
  Out += ",\"pgd_step_scale\":";
  appendNumber(Out, Spec.PgdStepScale);
  Out += ",\"optimizer\":";
  appendEscaped(Out, Spec.Optimizer);
  Out += ",\"use_cex_search\":";
  Out += Spec.UseCexSearch ? "true" : "false";
  Out += ",\"seed\":";
  appendEscaped(Out, formatU64(Spec.Seed));
  Out += ",\"order\":";
  appendEscaped(Out, Spec.Order);
  Out += ",\"precision\":";
  appendEscaped(Out, Spec.Precision);
  Out += ",\"checkpoint\":";
  appendEscaped(Out, Spec.CheckpointText);
  Out.push_back('}');
  return Out;
}

std::string charon::formatCancelCommand(uint64_t Shard) {
  std::string Out = "{\"cmd\":\"cancel\",\"shard\":";
  appendNumber(Out, static_cast<double>(Shard));
  Out.push_back('}');
  return Out;
}

std::string charon::formatPingCommand() { return "{\"cmd\":\"ping\"}"; }
std::string charon::formatQuitCommand() { return "{\"cmd\":\"quit\"}"; }

//===----------------------------------------------------------------------===//
// Event formatting
//===----------------------------------------------------------------------===//

std::string charon::formatReadyEvent() { return "{\"event\":\"ready\"}"; }
std::string charon::formatPongEvent() { return "{\"event\":\"pong\"}"; }

std::string charon::formatLoadedEvent(uint64_t Fingerprint) {
  std::string Out = "{\"event\":\"loaded\",\"fingerprint\":";
  appendEscaped(Out, formatU64(Fingerprint));
  Out.push_back('}');
  return Out;
}

std::string charon::formatDoneEvent(const FleetEvent &Ev) {
  std::string Out = "{\"event\":\"done\",\"shard\":";
  appendNumber(Out, static_cast<double>(Ev.Shard));
  Out += ",\"outcome\":";
  appendEscaped(Out, Ev.Outcome);
  Out += ",\"cex\":";
  appendNumberArray(Out, Ev.Cex);
  Out += ",\"objective\":";
  appendNumber(Out, Ev.Objective);
  Out += ",\"stats\":";
  appendStats(Out, Ev.Stats);
  Out += ",\"expanded_here\":";
  appendNumber(Out, static_cast<double>(Ev.ExpandedHere));
  Out += ",\"checkpoint\":";
  appendEscaped(Out, Ev.CheckpointText);
  Out.push_back('}');
  return Out;
}

std::string charon::formatErrorEvent(const std::string &Message) {
  std::string Out = "{\"event\":\"error\",\"message\":";
  appendEscaped(Out, Message);
  Out.push_back('}');
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

std::optional<FleetCommand> charon::parseCommandLine(const std::string &Line,
                                                     std::string *Error) {
  json::Object Obj;
  if (!json::parseObjectLine(Line, Obj, Error))
    return std::nullopt;
  auto CmdIt = Obj.find("cmd");
  if (CmdIt == Obj.end() || CmdIt->second.K != Value::Str) {
    setError(Error, "missing \"cmd\"");
    return std::nullopt;
  }
  const std::string &Cmd = CmdIt->second.S;

  FleetCommand Out;
  if (Cmd == "ping") {
    Out.K = FleetCommand::Kind::Ping;
    return Out;
  }
  if (Cmd == "quit") {
    Out.K = FleetCommand::Kind::Quit;
    return Out;
  }
  if (Cmd == "cancel") {
    Out.K = FleetCommand::Kind::Cancel;
    auto It = Obj.find("shard");
    if (It == Obj.end() || It->second.K != Value::Num || It->second.N < 0) {
      setError(Error, "cancel needs \"shard\"");
      return std::nullopt;
    }
    Out.CancelShard = static_cast<uint64_t>(It->second.N);
    return Out;
  }
  if (Cmd == "load") {
    Out.K = FleetCommand::Kind::Load;
    auto FpIt = Obj.find("fingerprint");
    auto NetIt = Obj.find("network");
    if (FpIt == Obj.end() || FpIt->second.K != Value::Str ||
        !parseU64(FpIt->second.S, Out.Fingerprint) || NetIt == Obj.end() ||
        NetIt->second.K != Value::Str) {
      setError(Error, "load needs \"fingerprint\" and \"network\"");
      return std::nullopt;
    }
    Out.NetworkText = NetIt->second.S;
    return Out;
  }
  if (Cmd != "run") {
    setError(Error, "unknown cmd: " + Cmd);
    return std::nullopt;
  }

  Out.K = FleetCommand::Kind::Run;
  RunSpec &R = Out.Run;
  for (const auto &[Key, V] : Obj) {
    if (Key == "cmd")
      continue;
    if (Key == "shard" && V.K == Value::Num && V.N >= 0)
      R.Shard = static_cast<uint64_t>(V.N);
    else if (Key == "fingerprint" && V.K == Value::Str &&
             parseU64(V.S, R.Fingerprint))
      ;
    else if (Key == "label" && V.K == Value::Num && V.N >= 0)
      R.Label = static_cast<size_t>(V.N);
    else if (Key == "lower" && V.K == Value::NumArray)
      R.Lower = V.A;
    else if (Key == "upper" && V.K == Value::NumArray)
      R.Upper = V.A;
    else if (Key == "delta" && V.K == Value::Num)
      R.Delta = V.N;
    else if (Key == "budget" && V.K == Value::Num)
      R.BudgetSeconds = V.N;
    else if (Key == "maxdepth" && V.K == Value::Num)
      R.MaxDepth = static_cast<int>(V.N);
    else if (Key == "pgd_steps" && V.K == Value::Num)
      R.PgdSteps = static_cast<int>(V.N);
    else if (Key == "pgd_restarts" && V.K == Value::Num)
      R.PgdRestarts = static_cast<int>(V.N);
    else if (Key == "pgd_step_scale" && V.K == Value::Num)
      R.PgdStepScale = V.N;
    else if (Key == "optimizer" && V.K == Value::Str)
      R.Optimizer = V.S;
    else if (Key == "use_cex_search" && V.K == Value::Bool)
      R.UseCexSearch = V.B;
    else if (Key == "seed" && V.K == Value::Str && parseU64(V.S, R.Seed))
      ;
    else if (Key == "order" && V.K == Value::Str)
      R.Order = V.S;
    else if (Key == "precision" && V.K == Value::Str)
      R.Precision = V.S;
    else if (Key == "checkpoint" && V.K == Value::Str)
      R.CheckpointText = V.S;
    else {
      setError(Error, "unknown or mistyped run key: " + Key);
      return std::nullopt;
    }
  }
  if (R.Lower.empty() || R.Lower.size() != R.Upper.size()) {
    setError(Error, "run needs matching \"lower\"/\"upper\"");
    return std::nullopt;
  }
  if (R.CheckpointText.empty()) {
    setError(Error, "run needs \"checkpoint\"");
    return std::nullopt;
  }
  return Out;
}

std::optional<FleetEvent> charon::parseEventLine(const std::string &Line,
                                                 std::string *Error) {
  json::Object Obj;
  if (!json::parseObjectLine(Line, Obj, Error))
    return std::nullopt;
  auto EvIt = Obj.find("event");
  if (EvIt == Obj.end() || EvIt->second.K != Value::Str) {
    setError(Error, "missing \"event\"");
    return std::nullopt;
  }
  const std::string &Ev = EvIt->second.S;

  FleetEvent Out;
  if (Ev == "ready") {
    Out.K = FleetEvent::Kind::Ready;
    return Out;
  }
  if (Ev == "pong") {
    Out.K = FleetEvent::Kind::Pong;
    return Out;
  }
  if (Ev == "loaded") {
    Out.K = FleetEvent::Kind::Loaded;
    auto It = Obj.find("fingerprint");
    if (It == Obj.end() || It->second.K != Value::Str ||
        !parseU64(It->second.S, Out.Fingerprint)) {
      setError(Error, "loaded needs \"fingerprint\"");
      return std::nullopt;
    }
    return Out;
  }
  if (Ev == "error") {
    Out.K = FleetEvent::Kind::Error;
    auto It = Obj.find("message");
    if (It != Obj.end() && It->second.K == Value::Str)
      Out.Message = It->second.S;
    return Out;
  }
  if (Ev != "done") {
    setError(Error, "unknown event: " + Ev);
    return std::nullopt;
  }

  Out.K = FleetEvent::Kind::Done;
  bool HaveStats = false;
  for (const auto &[Key, V] : Obj) {
    if (Key == "event")
      continue;
    if (Key == "shard" && V.K == Value::Num && V.N >= 0)
      Out.Shard = static_cast<uint64_t>(V.N);
    else if (Key == "outcome" && V.K == Value::Str)
      Out.Outcome = V.S;
    else if (Key == "cex" && V.K == Value::NumArray)
      Out.Cex = V.A;
    else if (Key == "objective" && V.K == Value::Num)
      Out.Objective = V.N;
    else if (Key == "stats" && V.K == Value::NumArray)
      HaveStats = statsFromArray(V.A, Out.Stats);
    else if (Key == "expanded_here" && V.K == Value::Num)
      Out.ExpandedHere = static_cast<long>(V.N);
    else if (Key == "checkpoint" && V.K == Value::Str)
      Out.CheckpointText = V.S;
    else {
      setError(Error, "unknown or mistyped done key: " + Key);
      return std::nullopt;
    }
  }
  if (Out.Outcome != "verified" && Out.Outcome != "falsified" &&
      Out.Outcome != "timeout") {
    setError(Error, "done needs a valid \"outcome\"");
    return std::nullopt;
  }
  if (!HaveStats) {
    setError(Error, "done needs a 13-element \"stats\"");
    return std::nullopt;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Config transport
//===----------------------------------------------------------------------===//

VerifierConfig charon::configFromRunSpec(const RunSpec &Spec) {
  VerifierConfig C;
  C.Delta = Spec.Delta;
  C.TimeLimitSeconds = Spec.BudgetSeconds;
  C.MaxDepth = Spec.MaxDepth;
  C.Pgd.Steps = Spec.PgdSteps;
  C.Pgd.Restarts = Spec.PgdRestarts;
  C.Pgd.StepScale = Spec.PgdStepScale;
  C.Optimizer =
      Spec.Optimizer == "fgsm" ? CexSearchKind::Fgsm : CexSearchKind::Pgd;
  C.UseCounterexampleSearch = Spec.UseCexSearch;
  C.Seed = Spec.Seed;
  C.SearchOrder = Spec.Order == "best-first" ? FrontierOrder::BestFirst
                                             : FrontierOrder::Lifo;
  C.Precision = Spec.Precision == "float32" ? KernelPrecision::Float32
                                            : KernelPrecision::Double;
  return C;
}

RunSpec charon::runSpecFromJob(const VerifierConfig &Config,
                               const RobustnessProperty &Prop,
                               uint64_t Fingerprint) {
  RunSpec Spec;
  Spec.Fingerprint = Fingerprint;
  Spec.Label = Prop.TargetClass;
  Spec.Lower.resize(Prop.Region.dim());
  Spec.Upper.resize(Prop.Region.dim());
  for (size_t I = 0; I < Prop.Region.dim(); ++I) {
    Spec.Lower[I] = Prop.Region.lower()[I];
    Spec.Upper[I] = Prop.Region.upper()[I];
  }
  Spec.Delta = Config.Delta;
  Spec.BudgetSeconds = Config.TimeLimitSeconds;
  Spec.MaxDepth = Config.MaxDepth;
  Spec.PgdSteps = Config.Pgd.Steps;
  Spec.PgdRestarts = Config.Pgd.Restarts;
  Spec.PgdStepScale = Config.Pgd.StepScale;
  Spec.Optimizer = Config.Optimizer == CexSearchKind::Fgsm ? "fgsm" : "pgd";
  Spec.UseCexSearch = Config.UseCounterexampleSearch;
  Spec.Seed = Config.Seed;
  Spec.Order =
      Config.SearchOrder == FrontierOrder::BestFirst ? "best-first" : "lifo";
  Spec.Precision =
      Config.Precision == KernelPrecision::Float32 ? "float32" : "double";
  return Spec;
}

bool charon::configTransportable(const VerifierConfig &Config) {
  // Process-local hooks the wire cannot carry. Trace is not digested, so
  // it needs an explicit check; the others are also caught by the digest
  // comparison below, listed here for clarity.
  if (Config.Trace || Config.CompleteFallback || Config.Cegar.Enabled)
    return false;
  RobustnessProperty Probe;
  Probe.Region = Box(Vector(std::vector<double>{0.0}),
                     Vector(std::vector<double>{1.0}));
  RunSpec Spec = runSpecFromJob(Config, Probe, 0);
  return digestVerifierConfigSemantics(configFromRunSpec(Spec)) ==
         digestVerifierConfigSemantics(Config);
}
