//===- Campaign.cpp - Time-boxed soundness-fuzzing campaigns ------------------===//

#include "fuzz/Campaign.h"

#include "support/Random.h"
#include "support/Timer.h"

#include <filesystem>
#include <sstream>

using namespace charon;

std::vector<DomainSpec> charon::defaultFuzzDomains() {
  return {{BaseDomainKind::Interval, 1},
          {BaseDomainKind::SymbolicInterval, 1},
          {BaseDomainKind::Zonotope, 1},
          {BaseDomainKind::Polyhedra, 1},
          {BaseDomainKind::Interval, 2},
          {BaseDomainKind::Zonotope, 2}};
}

std::optional<DomainSpec> charon::parseDomainSpec(const std::string &Name) {
  std::string Base = Name;
  int Disjuncts = 1;
  size_t Caret = Name.find('^');
  if (Caret != std::string::npos) {
    Base = Name.substr(0, Caret);
    try {
      Disjuncts = std::stoi(Name.substr(Caret + 1));
    } catch (...) {
      return std::nullopt;
    }
    if (Disjuncts < 1 || Disjuncts > 64)
      return std::nullopt;
  }

  DomainSpec Spec;
  Spec.Disjuncts = Disjuncts;
  if (Base == "Interval")
    Spec.Base = BaseDomainKind::Interval;
  else if (Base == "Zonotope")
    Spec.Base = BaseDomainKind::Zonotope;
  else if (Base == "SymbolicInterval")
    Spec.Base = BaseDomainKind::SymbolicInterval;
  else if (Base == "Polyhedra")
    Spec.Base = BaseDomainKind::Polyhedra;
  else
    return std::nullopt;
  // Symbolic intervals have no powerset lifting (makeElement asserts).
  if (Spec.Base == BaseDomainKind::SymbolicInterval && Spec.Disjuncts > 1)
    return std::nullopt;
  return Spec;
}

Rng charon::caseRng(uint64_t CampaignSeed, long CaseIndex) {
  return Rng(CampaignSeed ^
             (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(CaseIndex + 1)));
}

std::vector<OracleViolation>
charon::runFuzzCase(const Network &Net, const RobustnessProperty &Prop,
                    const std::vector<DomainSpec> &Domains,
                    const OracleConfig &Cfg, Rng &OracleR,
                    CampaignStats *Stats) {
  std::vector<OracleViolation> All;
  auto Append = [&All](std::vector<OracleViolation> V) {
    for (OracleViolation &X : V)
      All.push_back(std::move(X));
  };

  for (const DomainSpec &D : Domains) {
    if (D.Base == BaseDomainKind::SymbolicInterval && D.Disjuncts > 1)
      continue;
    Append(checkContainment(Net, Prop.Region, D, Cfg, OracleR));
    if (Stats)
      ++Stats->ContainmentChecks;
  }

  for (const DomainSpec &D : Domains) {
    if (D.Disjuncts <= 1)
      continue;
    Append(checkPowersetPrecision(Net, Prop.Region, Prop.TargetClass, D.Base,
                                  D.Disjuncts, Cfg));
    if (Stats)
      ++Stats->PrecisionChecks;
  }

  VerificationPolicy Policy;
  Verifier V(Net, Policy, oracleVerifierConfig(Cfg));
  VerifyResult Full = V.verify(Prop);

  Append(checkCounterexample(Net, Prop, Full, Cfg));
  if (Stats)
    ++Stats->CexChecks;

  Append(checkSubregionMonotonicity(Net, Prop, Full, Policy, Cfg, OracleR));
  if (Stats)
    ++Stats->MonotonicityChecks;

  Append(checkVerdictAgreement(Net, Prop, Policy, Cfg));
  if (Stats)
    ++Stats->AgreementChecks;

  Append(checkCheckpointResume(Net, Prop, Policy, Cfg, OracleR));
  if (Stats)
    ++Stats->ResumeChecks;

  // Last among the RNG consumers on purpose: the CEGAR oracle draws from
  // OracleR, and appending it after the established oracles keeps their RNG
  // streams (and hence the checked-in repro corpus) byte-stable.
  Append(checkCegarSoundness(Net, Prop, Policy, Cfg, OracleR));
  if (Stats)
    ++Stats->CegarChecks;

  // Draws no RNG, so it can follow the CEGAR oracle without perturbing any
  // stream.
  Append(checkCertificates(Net, Prop, Policy, Cfg));
  if (Stats)
    ++Stats->CertificateChecks;

  return All;
}

CampaignResult charon::runCampaign(const CampaignConfig &Config) {
  CampaignResult Res;
  // Refuse the doubly-unbounded configuration instead of running forever.
  if (Config.TimeBudgetSeconds <= 0.0 && Config.MaxCases <= 0)
    return Res;

  const std::vector<DomainSpec> Domains =
      Config.Domains.empty() ? defaultFuzzDomains() : Config.Domains;
  Deadline Budget(Config.TimeBudgetSeconds > 0.0 ? Config.TimeBudgetSeconds
                                                 : -1.0);
  Stopwatch Watch;

  if (!Config.ReproDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Config.ReproDir, Ec);
  }

  for (long Index = 0;; ++Index) {
    if (Budget.expired())
      break;
    if (Config.MaxCases > 0 && Index >= Config.MaxCases)
      break;

    Rng Base = caseRng(Config.Seed, Index);
    Rng GenR = Base.fork();
    Rng OracleR = Base.fork();

    NetworkSpec Spec = generateNetworkSpec(GenR, Config.Gen);
    Network Net = buildNetwork(Spec);
    RobustnessProperty Prop = generateProperty(GenR, Net, Config.Gen);
    std::ostringstream NameOs;
    NameOs << "fuzz-" << Config.Seed << "-" << Index;
    Prop.Name = NameOs.str();

    std::vector<OracleViolation> Violations =
        runFuzzCase(Net, Prop, Domains, Config.Oracle, OracleR, &Res.Stats);
    ++Res.Stats.Cases;
    if (Violations.empty())
      continue;

    ++Res.Stats.Violations;
    FuzzRepro Repro;
    Repro.CampaignSeed = Config.Seed;
    Repro.CaseIndex = Index;
    Repro.ExpectViolation = true;
    Repro.Oracle = Violations.front().Oracle;
    std::string Joined;
    for (size_t I = 0; I < Violations.size() && I < 3; ++I) {
      if (I)
        Joined += "; ";
      Joined += Violations[I].Message;
    }
    Repro.Message = Joined;
    Repro.Cfg = Config.Oracle;
    Repro.Domains = Domains;
    Repro.Net = Spec;
    Repro.Prop = Prop;
    Res.Violations.push_back(Repro);

    if (!Config.ReproDir.empty()) {
      std::string Path = Config.ReproDir + "/" + Prop.Name + ".repro";
      // Keep ReproPaths parallel to Violations (empty slot on write failure).
      Res.ReproPaths.push_back(saveReproFile(Repro, Path) ? Path
                                                          : std::string());
    }
  }

  Res.Stats.Seconds = Watch.seconds();
  return Res;
}
