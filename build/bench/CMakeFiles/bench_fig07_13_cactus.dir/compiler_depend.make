# Empty compiler generated dependencies file for bench_fig07_13_cactus.
# This may be replaced when dependencies are built.
