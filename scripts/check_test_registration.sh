#!/usr/bin/env bash
# Asserts every tests/<dir>/*Tests.cpp is registered in tests/CMakeLists.txt
# (via add_charon_test or an explicit target source), so a new test file
# cannot silently stay out of the ctest suite. Run from anywhere.

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
CMAKE_LISTS="$REPO/tests/CMakeLists.txt"

missing=0
while IFS= read -r file; do
  rel="${file#"$REPO"/tests/}"
  if ! grep -qF "$rel" "$CMAKE_LISTS"; then
    echo "error: $rel is not registered in tests/CMakeLists.txt" >&2
    missing=1
  fi
done < <(find "$REPO/tests" -name '*Tests.cpp' | sort)

if [ "$missing" -ne 0 ]; then
  echo "add the file to tests/CMakeLists.txt with add_charon_test(...)" >&2
  exit 1
fi
echo "test registration: all $(find "$REPO/tests" -name '*Tests.cpp' | wc -l | tr -d ' ') *Tests.cpp files registered"
