//===- Policy.h - Verification policies (domain + partition) ------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification policy pi_theta = (pi_alpha, pi_I) of Sec. 4: both
/// policies share the shape phi(theta * rho(N, I, K, x*)) — a featurization
/// rho, a learned parameter matrix theta, and a selection function phi that
/// turns the resulting real vector into either an abstract domain
/// (pi_alpha) or an axis-aligned splitting hyperplane (pi_I).
///
/// Features (Sec. 6): distance from the region center to the optimizer
/// result x*, the objective value F(x*), the gradient magnitude at x*, and
/// the average input-dimension length, plus a constant bias term.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_CORE_POLICY_H
#define CHARON_CORE_POLICY_H

#include "abstract/Analyzer.h"
#include "core/Property.h"
#include "linalg/Matrix.h"
#include "nn/Network.h"

namespace charon {

/// Number of features produced by the featurization (4 + bias).
inline constexpr size_t PolicyNumFeatures = 5;

/// Number of policy outputs: 2 for the domain policy (base domain,
/// disjunct count) + 3 for the partition policy (two dimension scores and
/// the cut offset) — Sec. 6's selection-function arities.
inline constexpr size_t PolicyNumOutputs = 5;

/// A chosen input-region split: hyperplane x_Dim = Cut.
struct SplitChoice {
  size_t Dim = 0;
  double Cut = 0.0;
};

/// Learned verification policy pi_theta = (pi_alpha, pi_I).
class VerificationPolicy {
public:
  /// Identity-free default: a hand-tuned theta that prefers zonotopes with
  /// a small disjunct budget and bisects the longest dimension — the
  /// starting point Bayesian optimization improves upon.
  VerificationPolicy();

  /// Policy with explicit parameters (PolicyNumOutputs x PolicyNumFeatures).
  explicit VerificationPolicy(Matrix Parameters);

  /// Flattened theta as a vector (row-major), the representation Bayesian
  /// optimization searches over.
  Vector flatten() const;

  /// Rebuilds a policy from a flattened parameter vector.
  static VerificationPolicy fromFlat(const Vector &Flat);

  /// Total number of learned parameters.
  static size_t numParameters() {
    return PolicyNumFeatures * PolicyNumOutputs;
  }

  /// rho(N, I, K, x*): the feature vector of Sec. 6.
  static Vector featurize(const Network &Net, const RobustnessProperty &Prop,
                          const Vector &XStar, double FStar);

  /// pi_alpha: picks the abstract domain for this subproblem.
  DomainSpec chooseDomain(const Network &Net, const RobustnessProperty &Prop,
                          const Vector &XStar, double FStar) const;

  /// pi_I: picks the splitting hyperplane. The returned cut is strictly
  /// interior (Assumption 1), choosing between the longest dimension and
  /// the dimension with the largest influence on N(x)_K, with the offset
  /// interpreted as a ratio from the region center toward x* (Sec. 6).
  SplitChoice choosePartition(const Network &Net,
                              const RobustnessProperty &Prop,
                              const Vector &XStar, double FStar) const;

  const Matrix &parameters() const { return Theta; }

private:
  Matrix Theta;
};

} // namespace charon

#endif // CHARON_CORE_POLICY_H
