//===- OnnxImport.cpp - Lower an ONNX graph to a charon Network ---------------===//

#include "onnx/OnnxImport.h"

#include "nn/Activation.h"
#include "nn/AvgPool2D.h"
#include "nn/Conv2D.h"
#include "nn/Dense.h"
#include "nn/Flatten.h"
#include "nn/MaxPool2D.h"
#include "nn/Relu.h"
#include "nn/Residual.h"
#include "onnx/OnnxProto.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

using namespace charon;
using namespace charon::onnx;

namespace {

/// Shape of the value currently flowing through the lowering: always a flat
/// vector of \c Flat elements, optionally with a spatial (channel-major
/// NCHW) interpretation that Conv/pool ops require.
struct ValueShape {
  size_t Flat = 0;
  std::optional<TensorShape> Spatial;
};

class Lowering {
public:
  explicit Lowering(const Graph &G) : G(G), Consumed(G.Nodes.size(), false) {}

  /// Runs the lowering; on failure \c Error holds the diagnostic.
  std::optional<Network> run();

  std::string Error;

private:
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  const TensorData *initOf(const std::string &Name) const {
    auto It = Init.find(Name);
    return It == Init.end() ? nullptr : It->second;
  }

  /// Indices of not-yet-consumed nodes reading \p Name.
  std::vector<size_t> consumersOf(const std::string &Name) const {
    std::vector<size_t> Out;
    for (size_t I = 0, E = G.Nodes.size(); I < E; ++I) {
      if (Consumed[I])
        continue;
      for (const std::string &In : G.Nodes[I].Inputs)
        if (In == Name) {
          Out.push_back(I);
          break;
        }
    }
    return Out;
  }

  /// Lowers the chain starting at value \p Cur until it produces \p Target.
  bool lowerChain(std::string Cur, const std::string &Target, ValueShape &VS,
                  std::vector<std::unique_ptr<Layer>> &Layers);

  /// Lowers a single node, appending layers and advancing \p VS.
  bool lowerNode(const Node &N, ValueShape &VS,
                 std::vector<std::unique_ptr<Layer>> &Layers);

  bool lowerResidual(const std::string &Cur, size_t AddIdx, size_t BodyStart,
                     ValueShape &VS,
                     std::vector<std::unique_ptr<Layer>> &Layers);

  bool lowerGemm(const Node &N, ValueShape &VS,
                 std::vector<std::unique_ptr<Layer>> &Layers);
  bool lowerMatMul(const Node &N, ValueShape &VS,
                   std::vector<std::unique_ptr<Layer>> &Layers);
  bool lowerAddBias(const Node &N, const std::string &DataInput,
                    ValueShape &VS,
                    std::vector<std::unique_ptr<Layer>> &Layers);
  bool lowerConv(const Node &N, ValueShape &VS,
                 std::vector<std::unique_ptr<Layer>> &Layers);
  bool lowerPool(const Node &N, ValueShape &VS,
                 std::vector<std::unique_ptr<Layer>> &Layers);
  bool lowerReshape(const Node &N, ValueShape &VS,
                    std::vector<std::unique_ptr<Layer>> &Layers);
  bool lowerBatchNorm(const Node &N, ValueShape &VS,
                      std::vector<std::unique_ptr<Layer>> &Layers);

  /// Applies the affine pointwise map y = A*x + C (per-element vectors) by
  /// folding into the last layer when it is Dense, or appending a diagonal
  /// DenseLayer otherwise.
  void applyPointwiseAffine(const std::vector<double> &A,
                            const std::vector<double> &C,
                            std::vector<std::unique_ptr<Layer>> &Layers);

  const Graph &G;
  std::map<std::string, const TensorData *> Init;
  std::vector<bool> Consumed;
};

// Attribute helpers -----------------------------------------------------------

int64_t attrInt(const Node &N, const char *Name, int64_t Default) {
  const Attribute *A = N.attr(Name);
  return A && A->HasI ? A->I : Default;
}

double attrFloat(const Node &N, const char *Name, double Default) {
  const Attribute *A = N.attr(Name);
  return A && A->HasF ? A->F : Default;
}

std::vector<int64_t> attrInts(const Node &N, const char *Name) {
  const Attribute *A = N.attr(Name);
  return A ? A->Ints : std::vector<int64_t>{};
}

bool allEqual(const std::vector<int64_t> &V, int64_t X) {
  for (int64_t E : V)
    if (E != X)
      return false;
  return true;
}

std::string describeDims(const std::vector<int64_t> &Dims) {
  std::ostringstream Os;
  Os << "[";
  for (size_t I = 0; I < Dims.size(); ++I)
    Os << (I ? "x" : "") << Dims[I];
  Os << "]";
  return Os.str();
}

/// Non-batch element count of an initializer used as a vector operand.
/// Accepts [N], [1,N], [C,1,1], [1,C,1,1] style shapes.
size_t vectorLength(const TensorData &T) { return T.Values.size(); }

} // namespace

// Chain walking ---------------------------------------------------------------

bool Lowering::lowerChain(std::string Cur, const std::string &Target,
                          ValueShape &VS,
                          std::vector<std::unique_ptr<Layer>> &Layers) {
  while (Cur != Target) {
    std::vector<size_t> Cons = consumersOf(Cur);
    if (Cons.empty())
      return fail("value '" + Cur +
                  "' has no consumer and is not the graph output");
    if (Cons.size() == 1) {
      const Node &N = G.Nodes[Cons[0]];
      Consumed[Cons[0]] = true;
      if (!lowerNode(N, VS, Layers))
        return false;
      if (N.Outputs.empty())
        return fail("node '" + N.OpType + "' has no output");
      Cur = N.Outputs[0];
      continue;
    }
    if (Cons.size() == 2) {
      // Residual fork: y = x + F(x). One consumer must be the joining Add
      // (both operands computed, one of them being x itself); the other
      // starts the body chain.
      size_t AddIdx = G.Nodes.size();
      for (size_t C : Cons) {
        const Node &N = G.Nodes[C];
        if (N.OpType != "Add" || N.Inputs.size() != 2)
          continue;
        const std::string &Other =
            N.Inputs[0] == Cur ? N.Inputs[1] : N.Inputs[0];
        if (Other != Cur && !initOf(Other))
          AddIdx = C;
      }
      if (AddIdx == G.Nodes.size())
        return fail("value '" + Cur +
                    "' fans out but no joining Add closes a residual block");
      size_t BodyStart = Cons[0] == AddIdx ? Cons[1] : Cons[0];
      if (!lowerResidual(Cur, AddIdx, BodyStart, VS, Layers))
        return false;
      Cur = G.Nodes[AddIdx].Outputs.empty() ? std::string()
                                            : G.Nodes[AddIdx].Outputs[0];
      if (Cur.empty())
        return fail("residual Add node has no output");
      continue;
    }
    return fail("value '" + Cur + "' has " + std::to_string(Cons.size()) +
                " consumers; only chains and two-way residual forks are "
                "supported");
  }
  return true;
}

bool Lowering::lowerResidual(const std::string &Cur, size_t AddIdx,
                             size_t BodyStart, ValueShape &VS,
                             std::vector<std::unique_ptr<Layer>> &Layers) {
  const Node &AddN = G.Nodes[AddIdx];
  const std::string &BodyOut =
      AddN.Inputs[0] == Cur ? AddN.Inputs[1] : AddN.Inputs[0];
  // Reserve the join before walking the body so the fork point has exactly
  // one live consumer.
  Consumed[AddIdx] = true;
  (void)BodyStart;

  ValueShape BodyVS = VS;
  std::vector<std::unique_ptr<Layer>> BodyLayers;
  if (!lowerChain(Cur, BodyOut, BodyVS, BodyLayers))
    return false;
  if (BodyLayers.empty())
    return fail("residual body is empty");
  if (BodyVS.Flat != VS.Flat)
    return fail("residual body output size " + std::to_string(BodyVS.Flat) +
                " does not match block input size " + std::to_string(VS.Flat));
  Network Body;
  for (auto &L : BodyLayers) {
    if (!L->affineForm() && !L->activationKind() && !L->isIdentity())
      return fail("residual body contains a layer kind the identity-skip "
                  "block cannot host (pooling inside a residual body is "
                  "unsupported)");
    Body.addLayer(std::move(L));
  }
  Layers.push_back(std::make_unique<ResidualLayer>(std::move(Body)));
  // y = x + F(x) is elementwise, so the spatial interpretation of x (if
  // any) carries over.
  return true;
}

// Node lowering ---------------------------------------------------------------

bool Lowering::lowerNode(const Node &N, ValueShape &VS,
                         std::vector<std::unique_ptr<Layer>> &Layers) {
  if (N.OpType == "Gemm")
    return lowerGemm(N, VS, Layers);
  if (N.OpType == "MatMul")
    return lowerMatMul(N, VS, Layers);
  if (N.OpType == "Add") {
    if (N.Inputs.size() != 2)
      return fail("Add expects 2 inputs");
    // The chain walk guarantees one operand is the current value; a
    // two-computed-operand Add is a residual join and never reaches here.
    const std::string &DataInput = initOf(N.Inputs[0]) ? N.Inputs[1]
                                                        : N.Inputs[0];
    return lowerAddBias(N, DataInput, VS, Layers);
  }
  if (N.OpType == "Conv")
    return lowerConv(N, VS, Layers);
  if (N.OpType == "Relu") {
    Layers.push_back(std::make_unique<ReluLayer>(VS.Flat));
    return true;
  }
  if (N.OpType == "Sigmoid") {
    Layers.push_back(std::make_unique<SigmoidLayer>(VS.Flat));
    return true;
  }
  if (N.OpType == "Tanh") {
    Layers.push_back(std::make_unique<TanhLayer>(VS.Flat));
    return true;
  }
  if (N.OpType == "MaxPool" || N.OpType == "AveragePool")
    return lowerPool(N, VS, Layers);
  if (N.OpType == "Flatten") {
    Layers.push_back(std::make_unique<FlattenLayer>(VS.Flat));
    VS.Spatial.reset();
    return true;
  }
  if (N.OpType == "Reshape")
    return lowerReshape(N, VS, Layers);
  if (N.OpType == "BatchNormalization")
    return lowerBatchNorm(N, VS, Layers);
  return fail("unsupported op '" + N.OpType + "'");
}

bool Lowering::lowerGemm(const Node &N, ValueShape &VS,
                         std::vector<std::unique_ptr<Layer>> &Layers) {
  if (N.Inputs.size() < 2)
    return fail("Gemm expects at least 2 inputs");
  const TensorData *W = initOf(N.Inputs[1]);
  if (!W)
    return fail("Gemm weight '" + N.Inputs[1] + "' is not an initializer");
  if (attrFloat(N, "alpha", 1.0) != 1.0)
    return fail("Gemm with alpha != 1 is unsupported");
  if (attrInt(N, "transA", 0) != 0)
    return fail("Gemm with transA is unsupported");
  double Beta = attrFloat(N, "beta", 1.0);
  bool TransB = attrInt(N, "transB", 0) != 0;
  if (W->Dims.size() != 2)
    return fail("Gemm weight must be 2-D, got " + describeDims(W->Dims));
  size_t D0 = static_cast<size_t>(W->Dims[0]);
  size_t D1 = static_cast<size_t>(W->Dims[1]);
  size_t Out = TransB ? D0 : D1;
  size_t In = TransB ? D1 : D0;
  if (In != VS.Flat)
    return fail("Gemm weight input size " + std::to_string(In) +
                " does not match incoming value size " +
                std::to_string(VS.Flat));
  Matrix Weights(Out, In);
  for (size_t R = 0; R < Out; ++R)
    for (size_t C = 0; C < In; ++C)
      Weights(R, C) = TransB ? W->Values[R * In + C] : W->Values[C * Out + R];
  Vector Bias(Out);
  if (N.Inputs.size() > 2 && !N.Inputs[2].empty()) {
    const TensorData *B = initOf(N.Inputs[2]);
    if (!B)
      return fail("Gemm bias '" + N.Inputs[2] + "' is not an initializer");
    if (vectorLength(*B) != Out)
      return fail("Gemm bias has " + std::to_string(vectorLength(*B)) +
                  " elements, expected " + std::to_string(Out));
    for (size_t R = 0; R < Out; ++R)
      Bias[R] = Beta * B->Values[R];
  }
  Layers.push_back(
      std::make_unique<DenseLayer>(std::move(Weights), std::move(Bias)));
  VS.Flat = Out;
  VS.Spatial.reset();
  return true;
}

bool Lowering::lowerMatMul(const Node &N, ValueShape &VS,
                           std::vector<std::unique_ptr<Layer>> &Layers) {
  if (N.Inputs.size() != 2)
    return fail("MatMul expects 2 inputs");
  const TensorData *W = initOf(N.Inputs[1]);
  if (!W)
    return fail("MatMul weight '" + N.Inputs[1] + "' is not an initializer");
  if (W->Dims.size() != 2)
    return fail("MatMul weight must be 2-D, got " + describeDims(W->Dims));
  size_t In = static_cast<size_t>(W->Dims[0]);
  size_t Out = static_cast<size_t>(W->Dims[1]);
  if (In != VS.Flat)
    return fail("MatMul weight input size " + std::to_string(In) +
                " does not match incoming value size " +
                std::to_string(VS.Flat));
  // ONNX MatMul computes x * W with W of shape (In, Out); the native layer
  // computes W' x, so W'(o, i) = W(i, o).
  Matrix Weights(Out, In);
  for (size_t R = 0; R < Out; ++R)
    for (size_t C = 0; C < In; ++C)
      Weights(R, C) = W->Values[C * Out + R];
  Layers.push_back(
      std::make_unique<DenseLayer>(std::move(Weights), Vector(Out)));
  VS.Flat = Out;
  VS.Spatial.reset();
  return true;
}

bool Lowering::lowerAddBias(const Node &N, const std::string &DataInput,
                            ValueShape &VS,
                            std::vector<std::unique_ptr<Layer>> &Layers) {
  const std::string &Other =
      N.Inputs[0] == DataInput ? N.Inputs[1] : N.Inputs[0];
  const TensorData *B = initOf(Other);
  if (!B)
    return fail("Add of two computed values is only supported as the join "
                "of a residual block");

  // Per-channel broadcast onto a spatial value: [C], [C,1,1] or [1,C,1,1].
  if (VS.Spatial &&
      vectorLength(*B) == static_cast<size_t>(VS.Spatial->Channels) &&
      vectorLength(*B) != VS.Flat) {
    if (!Layers.empty() && Layers.back()->kind() == LayerKind::Conv2D) {
      auto &Conv = static_cast<Conv2DLayer &>(*Layers.back());
      for (int Oc = 0; Oc < VS.Spatial->Channels; ++Oc)
        Conv.bias()[static_cast<size_t>(Oc)] += B->Values[Oc];
      return true;
    }
    std::vector<double> A(VS.Flat, 1.0), C(VS.Flat);
    const TensorShape &S = *VS.Spatial;
    for (int Ch = 0; Ch < S.Channels; ++Ch)
      for (int Y = 0; Y < S.Height; ++Y)
        for (int X = 0; X < S.Width; ++X)
          C[static_cast<size_t>(S.index(Ch, Y, X))] = B->Values[Ch];
    applyPointwiseAffine(A, C, Layers);
    return true;
  }

  if (vectorLength(*B) != VS.Flat)
    return fail("Add operand '" + Other + "' has " +
                std::to_string(vectorLength(*B)) +
                " elements, which does not broadcast onto a value of size " +
                std::to_string(VS.Flat));
  if (!Layers.empty() && Layers.back()->kind() == LayerKind::Dense) {
    auto &Dense = static_cast<DenseLayer &>(*Layers.back());
    for (size_t I = 0; I < VS.Flat; ++I)
      Dense.bias()[I] += B->Values[I];
    return true;
  }
  std::vector<double> A(VS.Flat, 1.0);
  applyPointwiseAffine(A, B->Values, Layers);
  return true;
}

bool Lowering::lowerConv(const Node &N, ValueShape &VS,
                         std::vector<std::unique_ptr<Layer>> &Layers) {
  if (!VS.Spatial)
    return fail("Conv requires a spatial (C,H,W) input shape");
  if (N.Inputs.size() < 2)
    return fail("Conv expects at least 2 inputs");
  const TensorData *W = initOf(N.Inputs[1]);
  if (!W)
    return fail("Conv weight '" + N.Inputs[1] + "' is not an initializer");
  if (W->Dims.size() != 4)
    return fail("Conv weight must be 4-D, got " + describeDims(W->Dims));
  if (attrInt(N, "group", 1) != 1)
    return fail("grouped Conv is unsupported");
  const Attribute *AutoPad = N.attr("auto_pad");
  if (AutoPad && !AutoPad->S.empty() && AutoPad->S != "NOTSET")
    return fail("Conv auto_pad '" + AutoPad->S + "' is unsupported");
  std::vector<int64_t> Dilations = attrInts(N, "dilations");
  if (!Dilations.empty() && !allEqual(Dilations, 1))
    return fail("dilated Conv is unsupported");

  int OutC = static_cast<int>(W->Dims[0]);
  int InC = static_cast<int>(W->Dims[1]);
  int KH = static_cast<int>(W->Dims[2]);
  int KW = static_cast<int>(W->Dims[3]);
  if (InC != VS.Spatial->Channels)
    return fail("Conv weight expects " + std::to_string(InC) +
                " input channels, value has " +
                std::to_string(VS.Spatial->Channels));
  std::vector<int64_t> KernelShape = attrInts(N, "kernel_shape");
  if (!KernelShape.empty() &&
      (KernelShape.size() != 2 || KernelShape[0] != KH ||
       KernelShape[1] != KW))
    return fail("Conv kernel_shape disagrees with weight dims");

  std::vector<int64_t> Strides = attrInts(N, "strides");
  int S = Strides.empty() ? 1 : static_cast<int>(Strides[0]);
  if (!Strides.empty() && !allEqual(Strides, Strides[0]))
    return fail("Conv with non-uniform strides is unsupported");
  std::vector<int64_t> Pads = attrInts(N, "pads");
  int P = Pads.empty() ? 0 : static_cast<int>(Pads[0]);
  if (!Pads.empty() && !allEqual(Pads, Pads[0]))
    return fail("Conv with asymmetric padding is unsupported");
  if (S <= 0 || P < 0 || KH <= 0 || KW <= 0 || OutC <= 0)
    return fail("Conv has non-positive kernel/stride dimensions");
  if (VS.Spatial->Height + 2 * P < KH || VS.Spatial->Width + 2 * P < KW)
    return fail("Conv kernel larger than padded input");

  auto Conv =
      std::make_unique<Conv2DLayer>(*VS.Spatial, OutC, KH, KW, S, P);
  for (int Oc = 0; Oc < OutC; ++Oc)
    for (int Ic = 0; Ic < InC; ++Ic)
      for (int Ky = 0; Ky < KH; ++Ky)
        for (int Kx = 0; Kx < KW; ++Kx)
          Conv->kernelAt(Oc, Ic, Ky, Kx) =
              W->Values[((static_cast<size_t>(Oc) * InC + Ic) * KH + Ky) *
                            KW +
                        Kx];
  if (N.Inputs.size() > 2 && !N.Inputs[2].empty()) {
    const TensorData *B = initOf(N.Inputs[2]);
    if (!B)
      return fail("Conv bias '" + N.Inputs[2] + "' is not an initializer");
    if (vectorLength(*B) != static_cast<size_t>(OutC))
      return fail("Conv bias has " + std::to_string(vectorLength(*B)) +
                  " elements, expected " + std::to_string(OutC));
    for (int Oc = 0; Oc < OutC; ++Oc)
      Conv->bias()[static_cast<size_t>(Oc)] = B->Values[Oc];
  }
  VS.Spatial = Conv->outputShape();
  VS.Flat = static_cast<size_t>(VS.Spatial->size());
  Layers.push_back(std::move(Conv));
  return true;
}

bool Lowering::lowerPool(const Node &N, ValueShape &VS,
                         std::vector<std::unique_ptr<Layer>> &Layers) {
  if (!VS.Spatial)
    return fail(N.OpType + " requires a spatial (C,H,W) input shape");
  const Attribute *AutoPad = N.attr("auto_pad");
  if (AutoPad && !AutoPad->S.empty() && AutoPad->S != "NOTSET")
    return fail(N.OpType + " auto_pad is unsupported");
  if (attrInt(N, "ceil_mode", 0) != 0)
    return fail(N.OpType + " ceil_mode is unsupported");
  std::vector<int64_t> Pads = attrInts(N, "pads");
  if (!Pads.empty() && !allEqual(Pads, 0))
    return fail(N.OpType + " with padding is unsupported");
  std::vector<int64_t> KernelShape = attrInts(N, "kernel_shape");
  if (KernelShape.size() != 2)
    return fail(N.OpType + " kernel_shape must have 2 entries");
  int PH = static_cast<int>(KernelShape[0]);
  int PW = static_cast<int>(KernelShape[1]);
  std::vector<int64_t> Strides = attrInts(N, "strides");
  int S = Strides.empty() ? 1 : static_cast<int>(Strides[0]);
  if (!Strides.empty() && !allEqual(Strides, Strides[0]))
    return fail(N.OpType + " with non-uniform strides is unsupported");
  if (PH <= 0 || PW <= 0 || S <= 0)
    return fail(N.OpType + " has non-positive kernel/stride dimensions");
  if (VS.Spatial->Height < PH || VS.Spatial->Width < PW)
    return fail(N.OpType + " window larger than input");

  if (N.OpType == "MaxPool") {
    auto Pool = std::make_unique<MaxPool2DLayer>(*VS.Spatial, PH, PW, S);
    VS.Spatial = Pool->outputShape();
    VS.Flat = static_cast<size_t>(VS.Spatial->size());
    Layers.push_back(std::move(Pool));
  } else {
    auto Pool = std::make_unique<AvgPool2DLayer>(*VS.Spatial, PH, PW, S);
    VS.Spatial = Pool->outputShape();
    VS.Flat = static_cast<size_t>(VS.Spatial->size());
    Layers.push_back(std::move(Pool));
  }
  return true;
}

bool Lowering::lowerReshape(const Node &N, ValueShape &VS,
                            std::vector<std::unique_ptr<Layer>> &Layers) {
  if (N.Inputs.size() != 2)
    return fail("Reshape expects 2 inputs");
  const TensorData *Shape = initOf(N.Inputs[1]);
  if (!Shape)
    return fail("Reshape target shape must be a constant initializer");
  // Resolve the target: strip a leading batch dim of 1/0, substitute the
  // current size for a single -1, and require the element count to match.
  std::vector<int64_t> Target;
  for (double V : Shape->Values)
    Target.push_back(static_cast<int64_t>(V));
  if (!Target.empty() && (Target[0] == 1 || Target[0] == 0))
    Target.erase(Target.begin());
  int64_t Known = 1;
  int MinusOnes = 0;
  for (int64_t D : Target) {
    if (D == -1)
      ++MinusOnes;
    else if (D <= 0)
      return fail("Reshape target dimension must be positive or -1");
    else
      Known *= D;
  }
  if (MinusOnes > 1)
    return fail("Reshape with more than one -1 dimension");
  int64_t Flat = static_cast<int64_t>(VS.Flat);
  if (MinusOnes == 1) {
    if (Known == 0 || Flat % Known != 0)
      return fail("Reshape -1 dimension does not divide the value size");
    for (int64_t &D : Target)
      if (D == -1)
        D = Flat / Known;
    Known = Flat;
  }
  if (Known != Flat)
    return fail("Reshape to " + std::to_string(Known) +
                " elements, value has " + std::to_string(Flat));
  // The flat channel-major vector is unchanged; only the interpretation
  // moves. A 3-D target restores a spatial view, anything else drops it.
  Layers.push_back(std::make_unique<FlattenLayer>(VS.Flat));
  if (Target.size() == 3)
    VS.Spatial = TensorShape{static_cast<int>(Target[0]),
                             static_cast<int>(Target[1]),
                             static_cast<int>(Target[2])};
  else
    VS.Spatial.reset();
  return true;
}

bool Lowering::lowerBatchNorm(const Node &N, ValueShape &VS,
                              std::vector<std::unique_ptr<Layer>> &Layers) {
  if (N.Inputs.size() < 5)
    return fail("BatchNormalization expects 5 inputs");
  const TensorData *Scale = initOf(N.Inputs[1]);
  const TensorData *Bias = initOf(N.Inputs[2]);
  const TensorData *Mean = initOf(N.Inputs[3]);
  const TensorData *Var = initOf(N.Inputs[4]);
  if (!Scale || !Bias || !Mean || !Var)
    return fail("BatchNormalization parameters must be initializers");
  size_t C = vectorLength(*Scale);
  if (vectorLength(*Bias) != C || vectorLength(*Mean) != C ||
      vectorLength(*Var) != C)
    return fail("BatchNormalization parameter sizes disagree");
  double Eps = attrFloat(N, "epsilon", 1e-5);

  std::vector<double> A(C), Off(C);
  for (size_t I = 0; I < C; ++I) {
    double V = Var->Values[I] + Eps;
    if (!(V > 0.0))
      return fail("BatchNormalization variance + epsilon is not positive");
    A[I] = Scale->Values[I] / std::sqrt(V);
    Off[I] = Bias->Values[I] - Mean->Values[I] * A[I];
  }

  // Spatial per-channel normalization folds into a directly preceding
  // Conv2D (scale its output-channel kernels and bias).
  if (VS.Spatial && C == static_cast<size_t>(VS.Spatial->Channels) &&
      C != VS.Flat) {
    if (!Layers.empty() && Layers.back()->kind() == LayerKind::Conv2D) {
      auto &Conv = static_cast<Conv2DLayer &>(*Layers.back());
      const TensorShape &In = Conv.inputShape();
      for (int Oc = 0; Oc < VS.Spatial->Channels; ++Oc) {
        for (int Ic = 0; Ic < In.Channels; ++Ic)
          for (int Ky = 0; Ky < Conv.kernelHeight(); ++Ky)
            for (int Kx = 0; Kx < Conv.kernelWidth(); ++Kx)
              Conv.kernelAt(Oc, Ic, Ky, Kx) *= A[static_cast<size_t>(Oc)];
        Conv.bias()[static_cast<size_t>(Oc)] =
            A[static_cast<size_t>(Oc)] * Conv.bias()[static_cast<size_t>(Oc)] +
            Off[static_cast<size_t>(Oc)];
      }
      return true;
    }
    // No conv to fold into: expand per-channel factors to per-element.
    std::vector<double> FullA(VS.Flat), FullC(VS.Flat);
    const TensorShape &S = *VS.Spatial;
    for (int Ch = 0; Ch < S.Channels; ++Ch)
      for (int Y = 0; Y < S.Height; ++Y)
        for (int X = 0; X < S.Width; ++X) {
          size_t Idx = static_cast<size_t>(S.index(Ch, Y, X));
          FullA[Idx] = A[static_cast<size_t>(Ch)];
          FullC[Idx] = Off[static_cast<size_t>(Ch)];
        }
    applyPointwiseAffine(FullA, FullC, Layers);
    return true;
  }

  if (C != VS.Flat)
    return fail("BatchNormalization over " + std::to_string(C) +
                " channels does not match value size " +
                std::to_string(VS.Flat));
  applyPointwiseAffine(A, Off, Layers);
  return true;
}

void Lowering::applyPointwiseAffine(
    const std::vector<double> &A, const std::vector<double> &C,
    std::vector<std::unique_ptr<Layer>> &Layers) {
  size_t N = A.size();
  if (!Layers.empty() && Layers.back()->kind() == LayerKind::Dense) {
    auto &Dense = static_cast<DenseLayer &>(*Layers.back());
    for (size_t R = 0; R < N; ++R) {
      double *Row = Dense.weights().row(R);
      for (size_t Col = 0, E = Dense.weights().cols(); Col < E; ++Col)
        Row[Col] *= A[R];
      Dense.bias()[R] = A[R] * Dense.bias()[R] + C[R];
    }
    return;
  }
  Matrix W(N, N);
  Vector B(N);
  for (size_t I = 0; I < N; ++I) {
    W(I, I) = A[I];
    B[I] = C[I];
  }
  Layers.push_back(std::make_unique<DenseLayer>(std::move(W), std::move(B)));
}

// Driver ----------------------------------------------------------------------

std::optional<Network> Lowering::run() {
  for (const TensorData &T : G.Initializers) {
    for (int64_t D : T.Dims)
      if (D < 0) {
        fail("initializer '" + T.Name + "' has a negative dimension");
        return std::nullopt;
      }
    if (static_cast<int64_t>(T.Values.size()) != T.elementCount()) {
      fail("initializer '" + T.Name + "' holds " +
           std::to_string(T.Values.size()) + " values but declares " +
           std::to_string(T.elementCount()));
      return std::nullopt;
    }
    Init[T.Name] = &T;
  }

  const ValueInfo *Input = nullptr;
  for (const ValueInfo &V : G.Inputs)
    if (!Init.count(V.Name)) {
      if (Input) {
        fail("graph has more than one non-initializer input");
        return std::nullopt;
      }
      Input = &V;
    }
  if (!Input) {
    fail("graph has no non-initializer input");
    return std::nullopt;
  }
  if (G.Outputs.empty()) {
    fail("graph has no output");
    return std::nullopt;
  }

  ValueShape VS;
  const std::vector<int64_t> &D = Input->Dims;
  auto positive = [](int64_t X) { return X > 0; };
  if (D.size() == 4 && (D[0] == 1 || D[0] == 0) && positive(D[1]) &&
      positive(D[2]) && positive(D[3])) {
    VS.Spatial = TensorShape{static_cast<int>(D[1]), static_cast<int>(D[2]),
                             static_cast<int>(D[3])};
    VS.Flat = static_cast<size_t>(VS.Spatial->size());
  } else if (D.size() == 3 && positive(D[0]) && positive(D[1]) &&
             positive(D[2])) {
    VS.Spatial = TensorShape{static_cast<int>(D[0]), static_cast<int>(D[1]),
                             static_cast<int>(D[2])};
    VS.Flat = static_cast<size_t>(VS.Spatial->size());
  } else if (D.size() == 2 && (D[0] == 1 || D[0] == 0) && positive(D[1])) {
    VS.Flat = static_cast<size_t>(D[1]);
  } else if (D.size() == 1 && positive(D[0])) {
    VS.Flat = static_cast<size_t>(D[0]);
  } else {
    fail("graph input '" + Input->Name + "' has unsupported shape " +
         describeDims(D));
    return std::nullopt;
  }

  std::vector<std::unique_ptr<Layer>> Layers;
  if (!lowerChain(Input->Name, G.Outputs[0].Name, VS, Layers))
    return std::nullopt;
  if (Layers.empty()) {
    fail("graph lowers to an empty network");
    return std::nullopt;
  }
  for (size_t I = 0, E = G.Nodes.size(); I < E; ++I)
    if (!Consumed[I]) {
      fail("node '" +
           (G.Nodes[I].Name.empty() ? G.Nodes[I].OpType : G.Nodes[I].Name) +
           "' is not reachable from the graph input");
      return std::nullopt;
    }

  Network Net;
  for (auto &L : Layers)
    Net.addLayer(std::move(L));
  return Net;
}

// Public API ------------------------------------------------------------------

ImportResult charon::onnx::importModelBytes(const unsigned char *Data,
                                            size_t Len) {
  ImportResult R;
  std::optional<Model> M = parseModel(Data, Len, R.Error);
  if (!M)
    return R;
  Lowering L(M->G);
  R.Net = L.run();
  if (!R.Net)
    R.Error = L.Error.empty() ? "import failed" : L.Error;
  return R;
}

ImportResult charon::onnx::importModelFile(const std::string &Path) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is) {
    ImportResult R;
    R.Error = "cannot open '" + Path + "'";
    return R;
  }
  std::vector<unsigned char> Bytes(
      (std::istreambuf_iterator<char>(Is)), std::istreambuf_iterator<char>());
  return importModelBytes(Bytes.data(), Bytes.size());
}

bool charon::onnx::isOnnxPath(const std::string &Path) {
  const std::string Ext = ".onnx";
  return Path.size() > Ext.size() &&
         Path.compare(Path.size() - Ext.size(), Ext.size(), Ext) == 0;
}
