# Empty compiler generated dependencies file for reluplex_mode_tests.
# This may be replaced when dependencies are built.
