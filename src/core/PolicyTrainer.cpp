//===- PolicyTrainer.cpp - Learning verification policies ---------------------===//

#include "core/PolicyTrainer.h"

#include "support/Random.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace charon;

double charon::scorePolicy(const VerificationPolicy &Policy,
                           const std::vector<TrainingProblem> &Problems,
                           const PolicyTrainConfig &Config) {
  assert(!Problems.empty() && "no training problems");
  std::vector<double> Costs(Problems.size(), 0.0);

  ThreadPool Pool(Config.Threads);
  Pool.parallelFor(static_cast<int>(Problems.size()), [&](int I) {
    const TrainingProblem &P = Problems[I];
    VerifierConfig VC = Config.Verifier;
    VC.TimeLimitSeconds = Config.TimeLimitSeconds;
    Verifier V(*P.Net, Policy, VC);
    VerifyResult R = V.verify(P.Prop);
    if (R.Result == Outcome::Timeout)
      Costs[I] = Config.Penalty * Config.TimeLimitSeconds;
    else
      Costs[I] = R.Stats.Seconds;
  });

  double Total = 0.0;
  for (double C : Costs)
    Total += C;
  return -Total;
}

PolicyTrainResult
charon::trainPolicy(const std::vector<TrainingProblem> &Problems,
                    const PolicyTrainConfig &Config, Rng &R) {
  size_t NumParams = VerificationPolicy::numParameters();
  Box ThetaDomain =
      Box::uniform(NumParams, -Config.ThetaRange, Config.ThetaRange);

  PolicyTrainResult Result;
  Result.DefaultScore =
      scorePolicy(VerificationPolicy(), Problems, Config);

  auto Objective = [&](const Vector &Flat) {
    return scorePolicy(VerificationPolicy::fromFlat(Flat), Problems, Config);
  };

  BayesOptResult Bo = bayesOptimize(Objective, ThetaDomain, Config.BayesOpt, R);
  Result.Evaluations = static_cast<int>(Bo.History.size());

  // Keep the learned theta only when it strictly beats the hand-tuned
  // default (with a small margin so timing noise and score ties cannot
  // smuggle in an arbitrary sample). Bayesian optimization with a tiny
  // budget can fail to beat a good prior; the deployment phase should
  // never regress.
  double Margin = 0.01 * std::abs(Result.DefaultScore) + 1e-9;
  if (Bo.BestY > Result.DefaultScore + Margin) {
    Result.Policy = VerificationPolicy::fromFlat(Bo.BestX);
    Result.BestScore = Bo.BestY;
  } else {
    Result.Policy = VerificationPolicy();
    Result.BestScore = Result.DefaultScore;
  }
  return Result;
}
