//===- CheckpointNegativeTests.cpp - Checkpoint parser rejection paths --------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// loadCheckpoint must return nullopt — never a partially filled or
// silently repaired checkpoint — on every class of malformed input:
// truncation at any line boundary, corrupted magic/keywords/digest values,
// non-numeric doubles, inverted region bounds, warm-start size mismatches,
// and duplicate node paths (two frontier entries with the same path can
// never come from the engine, whose paths identify nodes and seed their
// RNG streams).
//
//===----------------------------------------------------------------------===//

#include "search/Checkpoint.h"

#include <gtest/gtest.h>

#include <string>

using namespace charon;

namespace {

/// A small well-formed two-node checkpoint built by hand.
SearchCheckpoint sampleCheckpoint() {
  SearchCheckpoint Cp;
  Cp.Order = FrontierOrder::Lifo;
  Cp.NetworkFingerprint = 0x1234;
  Cp.PropertyDigest = 0x5678;
  Cp.ConfigDigest = 0x9abc;
  Cp.Stats.PgdCalls = 3;
  Cp.Stats.AnalyzeCalls = 3;
  Cp.Stats.Splits = 1;
  Cp.Stats.MaxDepth = 1;
  Cp.Stats.NodesExpanded = 1;
  Cp.Stats.Seconds = 0.25;

  CheckpointNode Lo;
  Lo.Path = {0};
  Lo.Region = Box(Vector{0.0, 0.0}, Vector{0.5, 1.0});
  Lo.Priority = -0.125;
  Lo.Warm = Vector{0.25, 0.75};
  CheckpointNode Hi;
  Hi.Path = {1};
  Hi.Region = Box(Vector{0.5, 0.0}, Vector{1.0, 1.0});
  Hi.Priority = -0.5;
  Cp.Open.push_back(std::move(Lo));
  Cp.Open.push_back(std::move(Hi));
  return Cp;
}

std::string sampleText() { return serializeCheckpoint(sampleCheckpoint()); }

/// Replaces the first occurrence of \p From with \p To; asserts it exists.
std::string replaced(const std::string &Text, const std::string &From,
                     const std::string &To) {
  size_t Pos = Text.find(From);
  EXPECT_NE(Pos, std::string::npos) << "pattern '" << From << "' not found";
  std::string Out = Text;
  Out.replace(Pos, From.size(), To);
  return Out;
}

} // namespace

TEST(CheckpointNegativeTest, BaselineParsesAndRoundTrips) {
  std::string Text = sampleText();
  std::optional<SearchCheckpoint> Cp = deserializeCheckpoint(Text);
  ASSERT_TRUE(Cp.has_value());
  EXPECT_EQ(Text, serializeCheckpoint(*Cp));
  EXPECT_EQ(Cp->Open.size(), 2u);
}

TEST(CheckpointNegativeTest, RejectsTruncationAtEveryLineBoundary) {
  std::string Text = sampleText();
  int Boundaries = 0;
  for (size_t Pos = Text.find('\n'); Pos != std::string::npos;
       Pos = Text.find('\n', Pos + 1)) {
    if (Pos + 1 == Text.size())
      break; // the full text parses, of course
    ++Boundaries;
    EXPECT_FALSE(deserializeCheckpoint(Text.substr(0, Pos + 1)).has_value())
        << "truncated after byte " << Pos;
  }
  EXPECT_GT(Boundaries, 8); // header + two node blocks worth of lines
}

TEST(CheckpointNegativeTest, RejectsCorruptedHeader) {
  EXPECT_FALSE(deserializeCheckpoint("").has_value());
  EXPECT_FALSE(
      deserializeCheckpoint(replaced(sampleText(), "charon-checkpoint 1",
                                     "charon-checkpoint 2"))
          .has_value());
  EXPECT_FALSE(
      deserializeCheckpoint(replaced(sampleText(), "charon-checkpoint",
                                     "charon-chickpoint"))
          .has_value());
  EXPECT_FALSE(
      deserializeCheckpoint(replaced(sampleText(), "order lifo", "order fifo"))
          .has_value());
}

TEST(CheckpointNegativeTest, RejectsCorruptedDigests) {
  // The digest values are unsigned decimals; anything non-numeric in their
  // place must fail the parse, not default to zero.
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "network 4660", "network 0xgg"))
                   .has_value());
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "property 22136", "property -"))
                   .has_value());
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "config 39612", "config digest"))
                   .has_value());
  // A renamed keyword is as fatal as a bad value.
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "network 4660", "netwerk 4660"))
                   .has_value());
}

TEST(CheckpointNegativeTest, RejectsNonNumericDoubles) {
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "lower 0 0", "lower zero 0"))
                   .has_value());
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "upper 0.5 1", "upper 0.5 one"))
                   .has_value());
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "warm 2 0.25 0.75", "warm 2 ! 0.75"))
                   .has_value());
}

TEST(CheckpointNegativeTest, RejectsStructuralDamage) {
  // Inverted bounds.
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "upper 0.5 1", "upper 0.5 -1"))
                   .has_value());
  // Warm vector sized neither 0 nor dim.
  EXPECT_FALSE(deserializeCheckpoint(
                   replaced(sampleText(), "warm 2 0.25 0.75", "warm 1 0.25"))
                   .has_value());
  // Path characters outside {0,1}.
  EXPECT_FALSE(
      deserializeCheckpoint(replaced(sampleText(), "node 0", "node 2"))
          .has_value());
  // Open count larger than the node blocks present (a form of truncation).
  EXPECT_FALSE(
      deserializeCheckpoint(replaced(sampleText(), "open 2", "open 3"))
          .has_value());
}

TEST(CheckpointNegativeTest, RejectsDuplicateNodePaths) {
  // Rewriting node "1" to node "0" leaves two frontier entries with the
  // same path — a file the engine could never have saved.
  std::string Text = replaced(sampleText(), "node 1 ", "node 0 ");
  EXPECT_FALSE(deserializeCheckpoint(Text).has_value());

  // Same for a duplicated root path.
  std::string TwoRoots = sampleText();
  TwoRoots = replaced(TwoRoots, "node 0 ", "node - ");
  TwoRoots = replaced(TwoRoots, "node 1 ", "node - ");
  EXPECT_FALSE(deserializeCheckpoint(TwoRoots).has_value());
}
