//===- PolyhedraTests.cpp - Tests for the relational polyhedra domain ----------===//

#include "abstract/Analyzer.h"
#include "abstract/IntervalElement.h"
#include "abstract/PolyhedraElement.h"
#include "abstract/SymbolicIntervalElement.h"
#include "nn/Builder.h"
#include "support/Random.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

using namespace charon;

TEST(PolyhedraTest, ExactOnAffineNetworks) {
  PolyhedraElement P(Box::uniform(2, -1.0, 1.0));
  P.applyAffine(Matrix{{1.0, 1.0}, {1.0, -1.0}}, Vector{0.0, 0.0});
  // Relational: y0 - y1 = 2 x1 in [-2, 2], exactly.
  EXPECT_DOUBLE_EQ(P.lowerBoundDiff(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(P.lowerBound(0), -2.0);
  EXPECT_DOUBLE_EQ(P.upperBound(0), 2.0);
}

TEST(PolyhedraTest, ReluStableCases) {
  PolyhedraElement P(Box(Vector{1.0, -3.0}, Vector{2.0, -1.0}));
  P.applyRelu();
  EXPECT_DOUBLE_EQ(P.lowerBound(0), 1.0);
  EXPECT_DOUBLE_EQ(P.upperBound(0), 2.0);
  EXPECT_DOUBLE_EQ(P.lowerBound(1), 0.0);
  EXPECT_DOUBLE_EQ(P.upperBound(1), 0.0);
}

TEST(PolyhedraTest, CrossingReluRelaxationIsTriangleTight) {
  // Crossing neuron with [l, u] = [-1, 3]: upper line y = 0.75 (x + 1)
  // hits (u, u) exactly, lower is clamped to 0.
  PolyhedraElement P(Box(Vector{-1.0}, Vector{3.0}));
  P.applyRelu();
  EXPECT_GE(P.upperBound(0), 3.0);
  EXPECT_LE(P.upperBound(0), 3.0 + 1e-12); // upper line hits (u, u)
  EXPECT_DOUBLE_EQ(P.lowerBound(0), 0.0);
}

TEST(PolyhedraTest, CrossingReluUpperStaysRelational) {
  // After the ReLU, the upper bound must still depend on the input (the
  // whole point of the domain): feeding the neuron into y = -x + const
  // keeps the correlation that a concretizing domain would lose.
  PolyhedraElement P(Box(Vector{-3.0}, Vector{1.0}));
  P.applyRelu();
  P.applyAffine(Matrix{{-1.0}}, Vector{0.0});
  // y = -relu(x): exact range [-1, 0]; relational tracking keeps the lower
  // bound at -1 (a concretized upper of u = 1 would give the same here,
  // but the *pair* (y, x) stays linked — checked via the diff bound).
  EXPECT_LE(P.lowerBound(0), -1.0 + 1e-12);
  EXPECT_GE(P.upperBound(0), 0.0 - 1e-12);
}

TEST(PolyhedraTest, SoundOnRandomNetworks) {
  Rng NetRng(61);
  Rng SampleRng(62);
  for (int T = 0; T < 4; ++T) {
    Network Net = makeMlp(3, {8, 8}, 3, NetRng);
    Box Region = Box::uniform(3, -0.4, 0.4);
    PolyhedraElement P(Region);
    propagate(Net, P);
    for (int S = 0; S < 300; ++S) {
      Vector Y = Net.evaluate(Region.sample(SampleRng));
      for (size_t O = 0; O < Y.size(); ++O) {
        EXPECT_GE(Y[O], P.lowerBound(O) - 1e-7) << "trial " << T;
        EXPECT_LE(Y[O], P.upperBound(O) + 1e-7) << "trial " << T;
      }
    }
  }
}

TEST(PolyhedraTest, TighterThanIntervalsOnDeepNets) {
  // Intervals decorrelate at every layer; the relational relaxation keeps
  // input terms, so its verification margins should dominate on deep
  // networks. (Polyhedra and symbolic intervals are formally incomparable:
  // the y >= x lower choice trades pointwise tightness for relational
  // information, so no such test exists against SymbolicInterval.)
  Rng NetRng(63);
  Rng RegionRng(64);
  int PolyWins = 0, Trials = 10;
  for (int T = 0; T < Trials; ++T) {
    Network Net = makeMlp(3, {10, 10, 10}, 2, NetRng);
    Vector Center(3);
    for (size_t I = 0; I < 3; ++I)
      Center[I] = RegionRng.uniform(-0.3, 0.3);
    Box Region = Box::linfBall(Center, 0.15, -1.0, 1.0);
    size_t K = Net.classify(Center);
    double Intv = analyzeRobustness(Net, Region, K,
                                    DomainSpec{BaseDomainKind::Interval, 1})
                      .Margin;
    double Poly = analyzeRobustness(Net, Region, K,
                                    DomainSpec{BaseDomainKind::Polyhedra, 1})
                      .Margin;
    if (Poly >= Intv - 1e-12)
      ++PolyWins;
  }
  EXPECT_GE(PolyWins, 8);
}

TEST(PolyhedraTest, VerifiesExample23) {
  // The relational relaxation proves Figure 4's property without case
  // splits (one more data point in the domain-precision ordering).
  Network Net = testing_nets::makeExample23Network();
  AnalysisResult R =
      analyzeRobustness(Net, Box::uniform(2, 0.0, 1.0), 1,
                        DomainSpec{BaseDomainKind::Polyhedra, 1});
  EXPECT_TRUE(R.Verified) << "margin = " << R.Margin;
}

TEST(PolyhedraTest, PointRegionIsExact) {
  Network Net = testing_nets::makeXorNetwork();
  Vector X{0.6, 0.4};
  PolyhedraElement P(Box(X, X));
  propagate(Net, P);
  Vector Y = Net.evaluate(X);
  for (size_t O = 0; O < Y.size(); ++O) {
    EXPECT_NEAR(P.lowerBound(O), Y[O], 1e-9);
    EXPECT_NEAR(P.upperBound(O), Y[O], 1e-9);
  }
}

TEST(PolyhedraTest, MaxPoolFallbackIsSound) {
  Rng NetRng(65);
  Network Net = makeLeNet(TensorShape{1, 6, 6}, 3, NetRng);
  Rng SampleRng(66);
  Vector Center(Net.inputSize());
  for (size_t I = 0; I < Center.size(); ++I)
    Center[I] = SampleRng.uniform(0.3, 0.7);
  Box Region = Box::linfBall(Center, 0.02, 0.0, 1.0);
  PolyhedraElement P(Region);
  propagate(Net, P);
  for (int S = 0; S < 100; ++S) {
    Vector Y = Net.evaluate(Region.sample(SampleRng));
    for (size_t O = 0; O < Y.size(); ++O) {
      EXPECT_GE(Y[O], P.lowerBound(O) - 1e-7);
      EXPECT_LE(Y[O], P.upperBound(O) + 1e-7);
    }
  }
}
