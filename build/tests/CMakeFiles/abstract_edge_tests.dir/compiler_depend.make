# Empty compiler generated dependencies file for abstract_edge_tests.
# This may be replaced when dependencies are built.
