//===- bench_fig14_complete.cpp - Figure 14: comparison with complete tools ----===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Reproduces Figure 14 (Sec. 7.2): Charon vs ReluVal vs Reluplex on the
// six fully connected networks (complete tools do not support convolution).
// The paper's headline: Charon solves 2.6x more than ReluVal and 16.6x
// more than Reluplex, and the Charon-solved set strictly contains the
// ReluVal-solved set.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace charon;
using namespace charon::bench;

int main() {
  HarnessConfig Config = defaultHarnessConfig();
  VerificationPolicy Policy = loadOrDefaultPolicy(Config);

  std::printf("== Figure 14: comparison with ReluVal and Reluplex ==\n");
  std::printf("(budget %.1fs/property, %d properties/network, conv net "
              "excluded)\n\n",
              Config.BudgetSeconds, Config.PropertiesPerSuite);

  std::vector<BenchmarkSuite> Suites = buildFcSuites(Config);
  size_t Total = 0;
  for (const auto &S : Suites)
    Total += S.Properties.size();
  std::printf("%zu networks, %zu benchmarks\n\n", Suites.size(), Total);

  std::vector<RunRecord> Charon =
      runToolOnSuites(ToolKind::Charon, Suites, Config, Policy);
  std::vector<RunRecord> ReluVal =
      runToolOnSuites(ToolKind::ReluVal, Suites, Config, Policy);
  std::vector<RunRecord> Reluplex =
      runToolOnSuites(ToolKind::Reluplex, Suites, Config, Policy);
  std::vector<RunRecord> ReluplexBT =
      runToolOnSuites(ToolKind::ReluplexBT, Suites, Config, Policy);

  printSummaryRow("Charon", summarize(Charon));
  printSummaryRow("ReluVal", summarize(ReluVal));
  printSummaryRow("Reluplex", summarize(Reluplex));
  printSummaryRow("Reluplex-BT", summarize(ReluplexBT));
  std::printf("\ncactus series (cumulative seconds at each solved count):\n");
  printCactus("Charon", Charon);
  printCactus("ReluVal", ReluVal);
  printCactus("Reluplex", Reluplex);
  printCactus("Reluplex-BT", ReluplexBT);

  Summary C = summarize(Charon);
  Summary V = summarize(ReluVal);
  Summary P = summarize(Reluplex);
  auto Ratio = [](int A, int B) {
    return static_cast<double>(A) / std::max(B, 1);
  };
  std::printf("\nCharon solves %.1fx as many benchmarks as ReluVal "
              "(paper: 2.6x)\n",
              Ratio(C.solved(), V.solved()));
  std::printf("Charon solves %.1fx as many benchmarks as Reluplex "
              "(paper: 16.6x)\n",
              Ratio(C.solved(), P.solved()));

  // Superset check: every ReluVal-solved benchmark is also Charon-solved.
  std::set<std::string> CharonSolved;
  for (const RunRecord &R : Charon)
    if (R.Result == Verdict::Verified || R.Result == Verdict::Falsified)
      CharonSolved.insert(R.Property);
  int Missed = 0;
  for (const RunRecord &R : ReluVal)
    if ((R.Result == Verdict::Verified || R.Result == Verdict::Falsified) &&
        !CharonSolved.count(R.Property))
      ++Missed;
  std::printf("ReluVal-solved benchmarks missed by Charon: %d (paper: 0 — "
              "strict superset)\n",
              Missed);
  return 0;
}
