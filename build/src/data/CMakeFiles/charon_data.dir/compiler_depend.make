# Empty compiler generated dependencies file for charon_data.
# This may be replaced when dependencies are built.
