//===- SimdDispatch.h - Runtime SIMD backend selection -----------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime selection of the SIMD backend behind the linalg kernels. Every
/// kernel always has a scalar implementation (the historical accumulation
/// contracts, compiled everywhere); on x86-64 hosts with AVX2 + FMA an
/// explicit intrinsics backend can be selected instead.
///
/// Determinism contract per level:
///  - Elementwise kernels (reluBatch, reluBackwardBatch, scaleColumns,
///    gatherColumns) and absColumnSums are bit-identical across *all*
///    levels: they perform exactly one IEEE operation per element (or, for
///    absColumnSums, accumulate each column in ascending-row order at every
///    level).
///  - Reductions (matVec dots, matMulTransposed, affineBatch, absRowSums)
///    and saxpy-style products (matTVec, matMul) change their accumulation
///    grouping under AVX2/FMA, so results are bit-identical only *within* a
///    level. Within a level the pair contracts still hold exactly: one dot
///    scheme is shared by matVec / affineBatch(PostAdd) / matMulTransposed
///    and one saxpy scheme by matTVec / matMul, so the per-point and batched
///    execution paths agree bit-for-bit at any level.
///  - affineBatch with BiasMode::PreInit (the Conv2D order) always runs the
///    scalar bodies: the per-point Conv2D tap loop is scalar, and its
///    bit-identity with the batched path is part of the layer contract.
///
/// The level is process-global: CHARON_SIMD=auto|avx2|scalar initializes it
/// (auto picks the best available backend), setSimdLevel() overrides it at
/// runtime (tests sweep it). Requesting an unavailable level is refused and
/// leaves the current level unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_LINALG_SIMDDISPATCH_H
#define CHARON_LINALG_SIMDDISPATCH_H

#include <vector>

namespace charon {

/// Numeric precision the *abstract-domain* kernels run at. Double is the
/// default everywhere; Float32 stores zonotope generator matrices as floats
/// and folds a rigorous outward-rounded error term into the radius vector,
/// so bounds stay sound (see linalg/KernelsF32.h). The concrete/PGD path is
/// always double regardless of this knob.
enum class KernelPrecision { Double, Float32 };

/// "double" / "float32" (stable names used in bench JSON and docs).
const char *toString(KernelPrecision P);

namespace kernels {

/// SIMD backend identifiers, in increasing capability order.
enum class SimdLevel {
  Scalar, ///< portable scalar bodies (the historical contracts)
  Avx2    ///< AVX2 + FMA intrinsics (x86-64 only)
};

/// "scalar" / "avx2" (stable names used in CHARON_SIMD and bench JSON).
const char *simdLevelName(SimdLevel Level);

/// The currently active backend. Initialized on first use from CHARON_SIMD
/// ("auto", "avx2", "scalar"; unset or unrecognized values mean auto) and
/// clamped to what the build + host actually support.
SimdLevel simdLevel();

/// Selects \p Level for all subsequent kernel calls. Returns false (and
/// changes nothing) when the level is not available on this build/host.
bool setSimdLevel(SimdLevel Level);

/// Every level usable on this build + host, in increasing order. Always
/// contains at least SimdLevel::Scalar.
std::vector<SimdLevel> availableSimdLevels();

} // namespace kernels
} // namespace charon

#endif // CHARON_LINALG_SIMDDISPATCH_H
