file(REMOVE_RECURSE
  "CMakeFiles/charon_abstract.dir/AbstractElement.cpp.o"
  "CMakeFiles/charon_abstract.dir/AbstractElement.cpp.o.d"
  "CMakeFiles/charon_abstract.dir/Analyzer.cpp.o"
  "CMakeFiles/charon_abstract.dir/Analyzer.cpp.o.d"
  "CMakeFiles/charon_abstract.dir/IntervalElement.cpp.o"
  "CMakeFiles/charon_abstract.dir/IntervalElement.cpp.o.d"
  "CMakeFiles/charon_abstract.dir/PolyhedraElement.cpp.o"
  "CMakeFiles/charon_abstract.dir/PolyhedraElement.cpp.o.d"
  "CMakeFiles/charon_abstract.dir/PowersetElement.cpp.o"
  "CMakeFiles/charon_abstract.dir/PowersetElement.cpp.o.d"
  "CMakeFiles/charon_abstract.dir/SymbolicIntervalElement.cpp.o"
  "CMakeFiles/charon_abstract.dir/SymbolicIntervalElement.cpp.o.d"
  "CMakeFiles/charon_abstract.dir/ZonotopeElement.cpp.o"
  "CMakeFiles/charon_abstract.dir/ZonotopeElement.cpp.o.d"
  "libcharon_abstract.a"
  "libcharon_abstract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charon_abstract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
