file(REMOVE_RECURSE
  "CMakeFiles/charon_baselines.dir/Ai2.cpp.o"
  "CMakeFiles/charon_baselines.dir/Ai2.cpp.o.d"
  "CMakeFiles/charon_baselines.dir/ReluVal.cpp.o"
  "CMakeFiles/charon_baselines.dir/ReluVal.cpp.o.d"
  "CMakeFiles/charon_baselines.dir/Reluplex.cpp.o"
  "CMakeFiles/charon_baselines.dir/Reluplex.cpp.o.d"
  "libcharon_baselines.a"
  "libcharon_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charon_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
