# Empty compiler generated dependencies file for bench_fig15_reluval_verified.
# This may be replaced when dependencies are built.
