//===- Box.cpp - Axis-aligned box regions -----------------------------------===//

#include "linalg/Box.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace charon;

Box::Box(Vector Lower, Vector Upper) : Lo(std::move(Lower)), Hi(std::move(Upper)) {
  assert(Lo.size() == Hi.size() && "box bound size mismatch");
#ifndef NDEBUG
  for (size_t I = 0, E = Lo.size(); I < E; ++I)
    assert(Lo[I] <= Hi[I] && "box has inverted bounds");
#endif
}

Box Box::uniform(size_t N, double Lo, double Hi) {
  return Box(Vector(N, Lo), Vector(N, Hi));
}

Box Box::linfBall(const Vector &Center, double Eps, double ClipLo,
                  double ClipHi) {
  Vector Lo(Center.size()), Hi(Center.size());
  for (size_t I = 0, E = Center.size(); I < E; ++I) {
    Lo[I] = std::max(Center[I] - Eps, ClipLo);
    Hi[I] = std::min(Center[I] + Eps, ClipHi);
  }
  return Box(std::move(Lo), std::move(Hi));
}

Vector Box::center() const {
  Vector C(Lo.size());
  for (size_t I = 0, E = Lo.size(); I < E; ++I)
    C[I] = 0.5 * (Lo[I] + Hi[I]);
  return C;
}

double Box::diameter() const {
  double Sum = 0.0;
  for (size_t I = 0, E = Lo.size(); I < E; ++I) {
    double W = Hi[I] - Lo[I];
    Sum += W * W;
  }
  return std::sqrt(Sum);
}

size_t Box::longestDim() const {
  assert(dim() > 0 && "empty box");
  size_t Best = 0;
  for (size_t I = 1, E = dim(); I < E; ++I)
    if (width(I) > width(Best))
      Best = I;
  return Best;
}

bool Box::contains(const Vector &X, double Tol) const {
  assert(X.size() == dim() && "dimension mismatch");
  for (size_t I = 0, E = dim(); I < E; ++I)
    if (X[I] < Lo[I] - Tol || X[I] > Hi[I] + Tol)
      return false;
  return true;
}

bool Box::contains(const Box &Inner, double Tol) const {
  assert(Inner.dim() == dim() && "dimension mismatch");
  for (size_t I = 0, E = dim(); I < E; ++I)
    if (Inner.Lo[I] < Lo[I] - Tol || Inner.Hi[I] > Hi[I] + Tol)
      return false;
  return true;
}

Vector Box::project(const Vector &X) const {
  return clamp(X, Lo, Hi);
}

std::pair<Box, Box> Box::split(size_t D, double C) const {
  assert(D < dim() && "split dimension out of range");
  // Nudge the cut strictly inside the interval so each half is strictly
  // smaller (Assumption 1). Degenerate (zero-width) dimensions bisect.
  double Margin = 0.01 * width(D);
  double Cut = std::min(std::max(C, Lo[D] + Margin), Hi[D] - Margin);
  if (width(D) == 0.0)
    Cut = Lo[D];
  Vector LoHalfHi = Hi;
  LoHalfHi[D] = Cut;
  Vector HiHalfLo = Lo;
  HiHalfLo[D] = Cut;
  return {Box(Lo, std::move(LoHalfHi)), Box(std::move(HiHalfLo), Hi)};
}

Vector Box::sample(Rng &R) const {
  Vector X(dim());
  for (size_t I = 0, E = dim(); I < E; ++I)
    X[I] = R.uniform(Lo[I], Hi[I]);
  return X;
}
