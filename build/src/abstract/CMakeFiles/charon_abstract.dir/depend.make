# Empty dependencies file for charon_abstract.
# This may be replaced when dependencies are built.
