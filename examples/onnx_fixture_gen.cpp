//===- onnx_fixture_gen.cpp - Deterministic ONNX fixture models ----------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Writes small, fully deterministic ONNX models for the importer tests and
// the CI smoke leg:
//
//   onnx_fixture_gen <fixture> <out.onnx>
//
// Fixtures:
//   mixed          Conv -> BatchNorm -> Relu -> AveragePool -> residual
//                  (Dense+Sigmoid body) -> Flatten -> Gemm. Exercises every
//                  importer feature in one graph.
//   mlp-sigmoid    MatMul + Add bias -> Sigmoid -> Gemm.
//
// Weights are closed-form functions of their indices, so the emitted bytes
// are identical on every run and platform.
//
//===----------------------------------------------------------------------===//

#include "onnx/OnnxBuilder.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace charon::onnx;

namespace {

// Small deterministic weight in [-0.75, 0.75]: a fixed-point sine keyed by
// the flat index. No RNG, no platform-dependent state.
double weightAt(int Seed, int I) {
  return 0.75 * std::sin(0.7 * Seed + 0.31 * I + 0.13);
}

std::vector<double> weightBlock(int Seed, int Count) {
  std::vector<double> V(Count);
  for (int I = 0; I < Count; ++I)
    V[I] = weightAt(Seed, I);
  return V;
}

/// Conv(2ch 6x6 -> 3ch 4x4, k3 s1 p0) -> BatchNorm -> Relu ->
/// AveragePool(2x2 s2 -> 3ch 2x2) -> residual(Dense 12x12 + Sigmoid) ->
/// Flatten -> Gemm(12 -> 3).
std::vector<unsigned char> buildMixed() {
  ModelBuilder B;
  B.setInput("x", {1, 2, 6, 6});

  B.addInitializer("conv_w", {3, 2, 3, 3}, weightBlock(1, 3 * 2 * 3 * 3));
  B.addInitializer("conv_b", {3}, weightBlock(2, 3));
  B.addNode("Conv", {"x", "conv_w", "conv_b"}, {"c1"},
            {ModelBuilder::Attr::ofInts("kernel_shape", {3, 3}),
             ModelBuilder::Attr::ofInts("strides", {1, 1}),
             ModelBuilder::Attr::ofInts("pads", {0, 0, 0, 0})});

  B.addInitializer("bn_scale", {3}, {1.25, 0.8, 1.1});
  B.addInitializer("bn_bias", {3}, {0.05, -0.1, 0.02});
  B.addInitializer("bn_mean", {3}, {0.01, -0.02, 0.03});
  B.addInitializer("bn_var", {3}, {0.9, 1.1, 1.0});
  B.addNode("BatchNormalization",
            {"c1", "bn_scale", "bn_bias", "bn_mean", "bn_var"}, {"b1"},
            {ModelBuilder::Attr::ofFloat("epsilon", 1e-5)});

  B.addNode("Relu", {"b1"}, {"r1"});
  B.addNode("AveragePool", {"r1"}, {"p1"},
            {ModelBuilder::Attr::ofInts("kernel_shape", {2, 2}),
             ModelBuilder::Attr::ofInts("strides", {2, 2})});

  // Residual block on the 12-element value: p1 + Sigmoid(Dense(p1)).
  B.addInitializer("res_w", {12, 12}, weightBlock(3, 12 * 12));
  B.addInitializer("res_b", {1, 12}, weightBlock(4, 12));
  B.addNode("MatMul", {"p1", "res_w"}, {"m1"});
  B.addNode("Add", {"m1", "res_b"}, {"a1"});
  B.addNode("Sigmoid", {"a1"}, {"s1"});
  B.addNode("Add", {"p1", "s1"}, {"res"});

  B.addNode("Flatten", {"res"}, {"f1"},
            {ModelBuilder::Attr::ofInt("axis", 1)});

  B.addInitializer("fc_w", {3, 12}, weightBlock(5, 3 * 12));
  B.addInitializer("fc_b", {3}, weightBlock(6, 3));
  B.addNode("Gemm", {"f1", "fc_w", "fc_b"}, {"y"},
            {ModelBuilder::Attr::ofInt("transB", 1)});

  B.setOutput("y", {1, 3});
  return B.finish("mixed");
}

/// MatMul(4 -> 8) + Add bias -> Sigmoid -> Gemm(8 -> 3).
std::vector<unsigned char> buildMlpSigmoid() {
  ModelBuilder B;
  B.setInput("x", {1, 4});
  B.addInitializer("w1", {4, 8}, weightBlock(11, 4 * 8));
  B.addInitializer("b1", {8}, weightBlock(12, 8));
  B.addNode("MatMul", {"x", "w1"}, {"m1"});
  B.addNode("Add", {"m1", "b1"}, {"a1"});
  B.addNode("Sigmoid", {"a1"}, {"s1"});
  B.addInitializer("w2", {3, 8}, weightBlock(13, 3 * 8));
  B.addInitializer("b2", {3}, weightBlock(14, 3));
  B.addNode("Gemm", {"s1", "w2", "b2"}, {"y"},
            {ModelBuilder::Attr::ofInt("transB", 1)});
  B.setOutput("y", {1, 3});
  return B.finish("mlp-sigmoid");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 3) {
    std::fprintf(stderr, "usage: %s <mixed|mlp-sigmoid> <out.onnx>\n",
                 Argv[0]);
    return 2;
  }
  std::vector<unsigned char> Bytes;
  if (!std::strcmp(Argv[1], "mixed"))
    Bytes = buildMixed();
  else if (!std::strcmp(Argv[1], "mlp-sigmoid"))
    Bytes = buildMlpSigmoid();
  else {
    std::fprintf(stderr, "error: unknown fixture '%s'\n", Argv[1]);
    return 2;
  }
  if (!writeModelFile(Bytes, Argv[2])) {
    std::fprintf(stderr, "error: cannot write %s\n", Argv[2]);
    return 2;
  }
  std::printf("wrote %s (%zu bytes)\n", Argv[2], Bytes.size());
  return 0;
}
