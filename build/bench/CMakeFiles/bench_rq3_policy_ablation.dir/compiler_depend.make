# Empty compiler generated dependencies file for bench_rq3_policy_ablation.
# This may be replaced when dependencies are built.
