#!/usr/bin/env bash
# Tier-1 verification line: configure, build, and run the full test suite.
# The suite includes fuzz_smoke, a 60-second soundness-fuzzing campaign
# (examples/charon_fuzz) that fails on any oracle violation; under
# --sanitize the same campaign runs with ASan + UBSan instrumentation.
# Usage: scripts/check.sh [--sanitize]
#   --sanitize   build with -DCHARON_SANITIZE=ON (ASan + UBSan)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ "${1:-}" == "--sanitize" ]]; then
  BUILD_DIR=build-sanitize
  CMAKE_ARGS+=(-DCHARON_SANITIZE=ON)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR" && ctest --output-on-failure -j
