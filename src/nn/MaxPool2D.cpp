//===- MaxPool2D.cpp - 2-D max pooling layer --------------------------------===//

#include "nn/MaxPool2D.h"

#include "linalg/Kernels.h"

using namespace charon;

MaxPool2DLayer::MaxPool2DLayer(TensorShape In, int PoolH, int PoolW,
                               int Stride)
    : InShape(In), PH(PoolH), PW(PoolW), S(Stride) {
  OutShape.Channels = In.Channels;
  OutShape.Height = (In.Height - PoolH) / Stride + 1;
  OutShape.Width = (In.Width - PoolW) / Stride + 1;
  assert(OutShape.Height > 0 && OutShape.Width > 0 && "pool output is empty");
  Spec.PoolIndices.resize(OutShape.size());
  for (int C = 0; C < OutShape.Channels; ++C) {
    for (int Oy = 0; Oy < OutShape.Height; ++Oy) {
      for (int Ox = 0; Ox < OutShape.Width; ++Ox) {
        std::vector<int> &Pool = Spec.PoolIndices[OutShape.index(C, Oy, Ox)];
        for (int Py = 0; Py < PH; ++Py)
          for (int Px = 0; Px < PW; ++Px)
            Pool.push_back(InShape.index(C, Oy * S + Py, Ox * S + Px));
      }
    }
  }
}

Vector MaxPool2DLayer::forward(const Vector &Input) const {
  assert(Input.size() == static_cast<size_t>(InShape.size()) &&
         "pool input size mismatch");
  Vector Out(OutShape.size());
  for (size_t O = 0, E = Spec.PoolIndices.size(); O < E; ++O) {
    const std::vector<int> &Pool = Spec.PoolIndices[O];
    double Best = Input[Pool.front()];
    for (size_t I = 1; I < Pool.size(); ++I)
      Best = std::max(Best, Input[Pool[I]]);
    Out[O] = Best;
  }
  return Out;
}

Vector MaxPool2DLayer::backward(const Vector &Input, const Vector &GradOut,
                                bool) {
  assert(GradOut.size() == static_cast<size_t>(OutShape.size()) &&
         "pool gradient size mismatch");
  Vector GradIn(InShape.size());
  // Route each output gradient to the (first) argmax input of its window.
  for (size_t O = 0, E = Spec.PoolIndices.size(); O < E; ++O) {
    const std::vector<int> &Pool = Spec.PoolIndices[O];
    int BestIdx = Pool.front();
    for (size_t I = 1; I < Pool.size(); ++I)
      if (Input[Pool[I]] > Input[BestIdx])
        BestIdx = Pool[I];
    GradIn[BestIdx] += GradOut[O];
  }
  return GradIn;
}

Matrix MaxPool2DLayer::forwardBatch(const Matrix &X) const {
  assert(X.cols() == static_cast<size_t>(InShape.size()) &&
         "pool batched input size mismatch");
  return kernels::poolMaxBatch(X, Spec.PoolIndices);
}

Matrix MaxPool2DLayer::backwardBatch(const Matrix &X,
                                     const Matrix &GradOut) const {
  assert(GradOut.cols() == static_cast<size_t>(OutShape.size()) &&
         X.rows() == GradOut.rows() && "pool batched gradient size mismatch");
  return kernels::poolMaxBackwardBatch(X, GradOut, Spec.PoolIndices,
                                       InShape.size());
}
