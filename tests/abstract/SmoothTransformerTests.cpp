//===- SmoothTransformerTests.cpp - Smooth-activation transformer soundness ---===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Sampled-concrete-containment sweep for the layer-zoo transformers: every
// abstract domain, at both kernel precisions, must bound the concrete
// outputs of networks using sigmoid/tanh activations, average pooling,
// flatten, and residual (identity-skip) blocks. The sweep runs through
// propagate() so it exercises exactly the code path the verifier uses
// (including the cached residual plan in the analyzer), not a per-layer
// shortcut. On top of containment, the end-to-end pieces of the delta-
// decision procedure are pinned on smooth nets: PGD returns delta-valid
// counterexamples, and CEGAR (which cannot abstract non-ReLU networks)
// falls back inline with a verdict bit-identical to the direct search.
//
//===----------------------------------------------------------------------===//

#include "abstract/Analyzer.h"
#include "core/Verifier.h"
#include "nn/Activation.h"
#include "nn/AvgPool2D.h"
#include "nn/Conv2D.h"
#include "nn/Dense.h"
#include "nn/Flatten.h"
#include "nn/Relu.h"
#include "nn/Residual.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

using namespace charon;

namespace {

Matrix randomMatrix(Rng &R, size_t Rows, size_t Cols) {
  Matrix W(Rows, Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      W(I, J) = R.gaussian(0.0, 0.5);
  return W;
}

Vector randomVector(Rng &R, size_t N) {
  Vector V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.gaussian(0.0, 0.3);
  return V;
}

std::unique_ptr<DenseLayer> randomDense(Rng &R, size_t In, size_t Out) {
  return std::make_unique<DenseLayer>(randomMatrix(R, Out, In),
                                      randomVector(R, Out));
}

/// Dense -> act -> Dense two-class head with the given hidden activation.
Network smoothMlp(ActivationKind Act, uint64_t Seed) {
  Rng R(Seed);
  Network Net;
  Net.addLayer(randomDense(R, 4, 6));
  Net.addLayer(std::make_unique<ActivationLayer>(Act, 6));
  Net.addLayer(randomDense(R, 6, 3));
  return Net;
}

/// Conv -> Sigmoid -> AvgPool -> Flatten -> Dense: the spatial zoo.
Network smoothConv(uint64_t Seed) {
  Rng R(Seed);
  Network Net;
  TensorShape In{1, 4, 4};
  auto Conv = std::make_unique<Conv2DLayer>(In, 2, 3, 3, 1, 1);
  for (int Oc = 0; Oc < 2; ++Oc)
    for (int Ky = 0; Ky < 3; ++Ky)
      for (int Kx = 0; Kx < 3; ++Kx)
        Conv->kernelAt(Oc, 0, Ky, Kx) = R.gaussian(0.0, 0.4);
  for (size_t I = 0; I < Conv->bias().size(); ++I)
    Conv->bias()[I] = R.gaussian(0.0, 0.2);
  TensorShape ConvOut = Conv->outputShape();
  Net.addLayer(std::move(Conv));
  Net.addLayer(std::make_unique<SigmoidLayer>(ConvOut.size()));
  auto Pool = std::make_unique<AvgPool2DLayer>(ConvOut, 2, 2, 2);
  size_t Pooled = Pool->outputShape().size();
  Net.addLayer(std::move(Pool));
  Net.addLayer(std::make_unique<FlattenLayer>(Pooled));
  Net.addLayer(randomDense(R, Pooled, 3));
  return Net;
}

/// Dense -> Relu -> residual(Dense + Tanh) -> Dense: the skip connection.
Network residualMlp(uint64_t Seed) {
  Rng R(Seed);
  Network Net;
  Net.addLayer(randomDense(R, 3, 4));
  Net.addLayer(std::make_unique<ReluLayer>(4));
  Network Body;
  Body.addLayer(randomDense(R, 4, 4));
  Body.addLayer(std::make_unique<TanhLayer>(4));
  Net.addLayer(std::make_unique<ResidualLayer>(std::move(Body)));
  Net.addLayer(randomDense(R, 4, 2));
  return Net;
}

struct NetCase {
  const char *Name;
  Network (*Make)(uint64_t);
};

Network makeSigmoidMlp(uint64_t S) { return smoothMlp(ActivationKind::Sigmoid, S); }
Network makeTanhMlp(uint64_t S) { return smoothMlp(ActivationKind::Tanh, S); }

const NetCase NetCases[] = {
    {"sigmoid_mlp", makeSigmoidMlp},
    {"tanh_mlp", makeTanhMlp},
    {"conv_avgpool", smoothConv},
    {"residual", residualMlp},
};

const DomainSpec AllDomains[] = {
    {BaseDomainKind::Interval, 1},        {BaseDomainKind::Zonotope, 1},
    {BaseDomainKind::Zonotope, 2},        {BaseDomainKind::SymbolicInterval, 1},
    {BaseDomainKind::Polyhedra, 1},
};

class SmoothSweepTest
    : public ::testing::TestWithParam<
          std::tuple<NetCase, DomainSpec, KernelPrecision>> {};

} // namespace

TEST_P(SmoothSweepTest, ConcreteOutputsAreContained) {
  const auto &[Case, Spec, Precision] = GetParam();
  for (uint64_t Seed : {11ull, 12ull}) {
    Network Net = Case.Make(Seed);
    Rng R(Seed * 31 + 5);
    for (int Trial = 0; Trial < 3; ++Trial) {
      Vector Center(Net.inputSize());
      for (size_t I = 0; I < Center.size(); ++I)
        Center[I] = R.uniform(-0.6, 0.6);
      Box Region = Box::linfBall(Center, R.uniform(0.02, 0.3), -1.0, 1.0);

      auto Elem = makeElement(Region, Spec, Precision);
      ASSERT_TRUE(propagate(Net, *Elem));

      for (int S = 0; S < 400; ++S) {
        Vector X = Region.sample(R);
        Vector Y = Net.evaluate(X);
        for (size_t O = 0; O < Y.size(); ++O) {
          EXPECT_GE(Y[O], Elem->lowerBound(O) - 1e-7)
              << Case.Name << " " << toString(Spec) << " output " << O;
          EXPECT_LE(Y[O], Elem->upperBound(O) + 1e-7)
              << Case.Name << " " << toString(Spec) << " output " << O;
        }
      }
    }
  }
}

TEST_P(SmoothSweepTest, BoundsAreFiniteAndOrdered) {
  const auto &[Case, Spec, Precision] = GetParam();
  Network Net = Case.Make(42);
  Box Region = Box::uniform(Net.inputSize(), -0.5, 0.5);
  auto Elem = makeElement(Region, Spec, Precision);
  ASSERT_TRUE(propagate(Net, *Elem));
  for (size_t O = 0; O < Net.outputSize(); ++O) {
    EXPECT_TRUE(std::isfinite(Elem->lowerBound(O))) << Case.Name;
    EXPECT_TRUE(std::isfinite(Elem->upperBound(O))) << Case.Name;
    EXPECT_LE(Elem->lowerBound(O), Elem->upperBound(O)) << Case.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZooNetsAndDomains, SmoothSweepTest,
    ::testing::Combine(::testing::ValuesIn(NetCases),
                       ::testing::ValuesIn(AllDomains),
                       ::testing::Values(KernelPrecision::Double,
                                         KernelPrecision::Float32)),
    [](const ::testing::TestParamInfo<
        std::tuple<NetCase, DomainSpec, KernelPrecision>> &Info) {
      std::string Name = std::get<0>(Info.param).Name;
      Name += "_" + toString(std::get<1>(Info.param));
      Name += std::get<2>(Info.param) == KernelPrecision::Float32 ? "_f32"
                                                                  : "_f64";
      for (char &C : Name)
        if (C == '^')
          C = '_';
      return Name;
    });

namespace {

/// A property the sigmoid MLP cannot satisfy: target the class the network
/// does NOT pick at the region center.
RobustnessProperty falsifiableProperty(const Network &Net) {
  Vector Center(Net.inputSize());
  for (size_t I = 0; I < Center.size(); ++I)
    Center[I] = 0.1 + 0.05 * static_cast<double>(I);
  Vector Y = Net.evaluate(Center);
  size_t Best = 0;
  for (size_t I = 1; I < Y.size(); ++I)
    if (Y[I] > Y[Best])
      Best = I;
  RobustnessProperty Prop;
  Prop.Region = Box::linfBall(Center, 0.05, -1.0, 1.0);
  Prop.TargetClass = (Best + 1) % Y.size();
  Prop.Name = "smooth-falsifiable";
  return Prop;
}

/// A property the region center satisfies with slack: target the argmax
/// class over a small region.
RobustnessProperty likelyRobustProperty(const Network &Net) {
  Vector Center(Net.inputSize());
  for (size_t I = 0; I < Center.size(); ++I)
    Center[I] = 0.1 + 0.05 * static_cast<double>(I);
  Vector Y = Net.evaluate(Center);
  size_t Best = 0;
  for (size_t I = 1; I < Y.size(); ++I)
    if (Y[I] > Y[Best])
      Best = I;
  RobustnessProperty Prop;
  Prop.Region = Box::linfBall(Center, 0.01, -1.0, 1.0);
  Prop.TargetClass = Best;
  Prop.Name = "smooth-robust";
  return Prop;
}

VerifierConfig smoothConfig() {
  VerifierConfig Config;
  Config.Seed = 9;
  Config.TimeLimitSeconds = 30.0;
  return Config;
}

} // namespace

TEST(SmoothVerifierTest, PgdFindsDeltaValidCounterexamples) {
  for (uint64_t Seed : {21ull, 22ull, 23ull}) {
    Network Net = smoothMlp(ActivationKind::Sigmoid, Seed);
    RobustnessProperty Prop = falsifiableProperty(Net);
    VerifierConfig Config = smoothConfig();
    Verifier V(Net, VerificationPolicy(), Config);
    VerifyResult R = V.verify(Prop);
    ASSERT_EQ(R.Result, Outcome::Falsified) << "seed " << Seed;
    // Delta-validity (Definition 5.3): the witness lies in the region and
    // its freshly evaluated objective is at or below the Eq. 4 threshold.
    EXPECT_TRUE(Prop.Region.contains(R.Counterexample, 1e-9));
    double F = Net.objective(R.Counterexample, Prop.TargetClass);
    EXPECT_LE(F, Config.Delta + 1e-12) << "seed " << Seed;
    EXPECT_NEAR(F, R.ObjectiveAtCex, 1e-12) << "seed " << Seed;
    EXPECT_GE(R.Stats.PgdCalls, 1) << "seed " << Seed;
  }
}

TEST(SmoothVerifierTest, CegarFallsBackInlineWithIdenticalVerdict) {
  // CEGAR's neuron merging only applies to dense-ReLU networks; on a
  // smooth net it must take the inline fallback and reproduce the direct
  // verdict bit for bit — outcome, witness, and objective.
  for (bool Falsifiable : {false, true}) {
    Network Net = smoothMlp(ActivationKind::Sigmoid, 31);
    RobustnessProperty Prop =
        Falsifiable ? falsifiableProperty(Net) : likelyRobustProperty(Net);

    VerifierConfig Direct = smoothConfig();
    VerifyResult RD = Verifier(Net, VerificationPolicy(), Direct).verify(Prop);

    VerifierConfig Cegar = smoothConfig();
    Cegar.Cegar.Enabled = true;
    VerifyResult RC = Verifier(Net, VerificationPolicy(), Cegar).verify(Prop);

    ASSERT_NE(RD.Result, Outcome::Timeout);
    EXPECT_EQ(RC.Result, RD.Result) << "falsifiable=" << Falsifiable;
    EXPECT_GE(RC.Stats.CegarFallbacks, 1) << "fallback path not taken";
    EXPECT_EQ(RC.Stats.CegarRounds, 0) << "smooth net must not be abstracted";
    ASSERT_EQ(RC.Counterexample.size(), RD.Counterexample.size());
    for (size_t I = 0; I < RD.Counterexample.size(); ++I)
      EXPECT_EQ(RC.Counterexample[I], RD.Counterexample[I]) << "cex bit " << I;
    EXPECT_EQ(RC.ObjectiveAtCex, RD.ObjectiveAtCex);
  }
}

TEST(SmoothVerifierTest, SmoothNetVerifiesUnderBothPrecisions) {
  // A robust property on a smooth net should be provable through the
  // relaxation transformers, and the float32 mode must stay sound (it may
  // only widen margins, never flip a verdict to an unsound Verified).
  Network Net = smoothMlp(ActivationKind::Sigmoid, 31);
  RobustnessProperty Prop = likelyRobustProperty(Net);
  for (KernelPrecision P :
       {KernelPrecision::Double, KernelPrecision::Float32}) {
    VerifierConfig Config = smoothConfig();
    Config.Precision = P;
    VerifyResult R = Verifier(Net, VerificationPolicy(), Config).verify(Prop);
    EXPECT_EQ(R.Result, Outcome::Verified)
        << (P == KernelPrecision::Float32 ? "float32" : "double");
  }
}
