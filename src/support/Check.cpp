//===- Check.cpp - Assertion and fatal-error utilities -------------------===//

#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

using namespace charon;

void charon::reportUnreachable(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

void charon::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}
