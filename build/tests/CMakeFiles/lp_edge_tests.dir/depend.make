# Empty dependencies file for lp_edge_tests.
# This may be replaced when dependencies are built.
