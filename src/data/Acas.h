//===- Acas.h - Synthetic collision-avoidance dataset ------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A synthetic stand-in for the ACAS Xu collision avoidance networks the
/// paper trains its verification policy on (Sec. 6). The real ACAS Xu tables
/// are not available offline; we define a deterministic piecewise advisory
/// function with the same interface (5 normalized inputs describing an
/// encounter geometry, 5 output advisories) and train a small ReLU network
/// on samples of it. Policy learning only needs a representative family of
/// low-dimensional verification problems, which this provides.
///
/// Inputs (all normalized to [0, 1]):
///   0: rho    — distance to intruder
///   1: theta  — bearing of intruder (0.5 is dead ahead)
///   2: psi    — relative heading of intruder
///   3: vOwn   — ownship speed
///   4: vInt   — intruder speed
/// Advisories: 0 COC (clear of conflict), 1 weak left, 2 strong left,
///             3 weak right, 4 strong right.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_DATA_ACAS_H
#define CHARON_DATA_ACAS_H

#include "nn/Train.h"

namespace charon {
class Rng;

/// Number of inputs/outputs of the synthetic ACAS-like problem.
inline constexpr int AcasInputs = 5;
inline constexpr int AcasOutputs = 5;

/// The ground-truth advisory for an encounter (piecewise rules on geometry).
int acasAdvisory(const Vector &X);

/// Samples \p Count encounters uniformly and labels them with the advisory
/// function.
Dataset makeAcasDataset(int Count, Rng &R);

} // namespace charon

#endif // CHARON_DATA_ACAS_H
