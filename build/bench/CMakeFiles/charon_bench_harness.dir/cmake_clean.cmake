file(REMOVE_RECURSE
  "CMakeFiles/charon_bench_harness.dir/Harness.cpp.o"
  "CMakeFiles/charon_bench_harness.dir/Harness.cpp.o.d"
  "libcharon_bench_harness.a"
  "libcharon_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charon_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
