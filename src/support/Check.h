//===- Check.h - Assertion and fatal-error utilities ----------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight assertion helpers used throughout the project. The library
/// does not use exceptions; invariant violations abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_SUPPORT_CHECK_H
#define CHARON_SUPPORT_CHECK_H

namespace charon {

/// Prints \p Msg (with file/line context) to stderr and aborts. Used to mark
/// control flow that must be unreachable if program invariants hold.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    int Line);

/// Prints a fatal-error message to stderr and aborts. Unlike assertions this
/// is kept in release builds; use it for errors triggered by bad input.
[[noreturn]] void reportFatalError(const char *Msg);

} // namespace charon

#define charon_unreachable(MSG)                                               \
  ::charon::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // CHARON_SUPPORT_CHECK_H
