//===- Frontier.cpp - Schedulable open-node frontier --------------------------===//

#include "search/Frontier.h"

#include <algorithm>
#include <cassert>

using namespace charon;

const char *charon::toString(FrontierOrder O) {
  switch (O) {
  case FrontierOrder::Lifo:
    return "lifo";
  case FrontierOrder::BestFirst:
    return "best-first";
  }
  return "unknown";
}

Frontier::Frontier(FrontierOrder O, const ProofTree *T) : Order(O), Tree(T) {}

bool Frontier::worse(NodeId A, NodeId B) const {
  double PA = Tree->node(A).Priority;
  double PB = Tree->node(B).Priority;
  if (PA != PB)
    return PA > PB;
  return Tree->dfsPrecedes(B, A);
}

void Frontier::push(NodeId Id) {
  Entries.push_back(Id);
  if (Order == FrontierOrder::BestFirst)
    std::push_heap(Entries.begin(), Entries.end(),
                   [this](NodeId A, NodeId B) { return worse(A, B); });
}

NodeId Frontier::pop() {
  assert(!Entries.empty() && "pop on empty frontier");
  if (Order == FrontierOrder::BestFirst)
    std::pop_heap(Entries.begin(), Entries.end(),
                  [this](NodeId A, NodeId B) { return worse(A, B); });
  NodeId Id = Entries.back();
  Entries.pop_back();
  return Id;
}
