//===- Verifier.cpp - The Charon decision procedure (Algorithm 1) -------------===//

#include "core/Verifier.h"

#include "search/SearchEngine.h"

using namespace charon;

const char *charon::toString(Outcome O) {
  switch (O) {
  case Outcome::Verified:
    return "verified";
  case Outcome::Falsified:
    return "falsified";
  case Outcome::Timeout:
    return "timeout";
  }
  return "unknown";
}

Verifier::Verifier(const Network &N, VerificationPolicy P, VerifierConfig C)
    : Net(N), Policy(std::move(P)), Config(std::move(C)) {}

VerifyResult Verifier::verify(const RobustnessProperty &Prop,
                              const SearchCheckpoint *Resume) const {
  return SearchEngine(Net, Policy, Config).run(Prop, Resume, nullptr);
}

VerifyResult Verifier::verifyParallel(const RobustnessProperty &Prop,
                                      ThreadPool &Pool,
                                      const SearchCheckpoint *Resume) const {
  return SearchEngine(Net, Policy, Config).run(Prop, Resume, &Pool);
}
