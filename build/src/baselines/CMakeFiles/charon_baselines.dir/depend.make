# Empty dependencies file for charon_baselines.
# This may be replaced when dependencies are built.
