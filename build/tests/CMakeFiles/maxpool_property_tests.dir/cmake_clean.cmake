file(REMOVE_RECURSE
  "CMakeFiles/maxpool_property_tests.dir/abstract/MaxPoolPropertyTests.cpp.o"
  "CMakeFiles/maxpool_property_tests.dir/abstract/MaxPoolPropertyTests.cpp.o.d"
  "maxpool_property_tests"
  "maxpool_property_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxpool_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
