//===- Pgd.h - Projected gradient descent counterexample search --*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gradient-based adversarial counterexample search (Sec. 3, Eq. 1):
///
///   x* = argmin_{x in I} F(x),  F(x) = N(x)_K - max_{j != K} N(x)_j.
///
/// The paper uses projected gradient descent (PGD, Madry et al.); FGSM is
/// provided as the classic single-step alternative. Both are *unsound*
/// falsifiers: F(x*) <= 0 certifies a violation, but F(x*) > 0 proves
/// nothing — which is exactly why Algorithm 1 couples them with abstract
/// interpretation.
///
/// The search runs all restart chains in lock step as one B x N population:
/// every step costs one batched forward + backward pair for the whole
/// population instead of Restarts x Steps scalar passes, and the search
/// returns as soon as any chain crosses the early-stop threshold.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_OPT_PGD_H
#define CHARON_OPT_PGD_H

#include "linalg/Box.h"
#include "nn/Network.h"

namespace charon {
class Rng;

/// Which execution engine evaluates the population. Both engines implement
/// the same lock-step semantics and return bit-identical results; Scalar
/// evaluates the population row by row through the per-point Network calls
/// and exists as the reference oracle for the equivalence tests (and the
/// "before" side of the cex-search benchmarks).
enum class PgdEngine { Batched, Scalar };

/// PGD hyperparameters. The defaults are deliberately light: Algorithm 1
/// runs a search at every refinement node, so a cheap-but-decent search
/// beats a thorough-but-slow one (splitting compensates, Sec. 3).
struct PgdConfig {
  int Steps = 25;         ///< gradient steps (all chains advance together)
  int Restarts = 2;       ///< population size (chain 0 starts deterministic)
  double StepScale = 0.3; ///< initial step, as a fraction of region width
  /// Stop as soon as the best objective reaches this bound. The default 0
  /// is the true-counterexample certificate; Verifier::step raises it to
  /// VerifierConfig::Delta so the search stops at the Eq. 4 refutation
  /// threshold instead of polishing an already-sufficient witness.
  double EarlyStopObjective = 0.0;
  /// Execution engine; see PgdEngine.
  PgdEngine Engine = PgdEngine::Batched;
};

/// Result of a counterexample search: the best point found and its
/// objective value F(X).
struct PgdResult {
  Vector X;
  double Objective = 0.0;
};

/// Minimizes the robustness objective over \p Region with projected
/// gradient descent (steepest-descent steps scaled per dimension by the
/// region width, projected back onto the box). All restart chains advance
/// in lock step; chain 0 starts from Region.project(*WarmStart) when a warm
/// start is given (refinement seeds it with the parent node's witness) and
/// from the region center otherwise, the remaining chains from uniform
/// samples of \p R.
PgdResult pgdMinimize(const Network &Net, const Box &Region, size_t K,
                      const PgdConfig &Config, Rng &R,
                      const Vector *WarmStart = nullptr);

/// Single-step fast gradient sign method from the region center (a batch of
/// one through the batched execution engine).
PgdResult fgsmMinimize(const Network &Net, const Box &Region, size_t K);

} // namespace charon

#endif // CHARON_OPT_PGD_H
