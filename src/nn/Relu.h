//===- Relu.h - Rectified linear unit activation ----------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Element-wise ReLU(x) = max(x, 0), the activation the paper's networks use
/// throughout (Sec. 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_NN_RELU_H
#define CHARON_NN_RELU_H

#include "nn/Layer.h"

namespace charon {

/// Element-wise rectified linear unit.
class ReluLayer : public Layer {
public:
  explicit ReluLayer(size_t N) : Size(N) {}

  LayerKind kind() const override { return LayerKind::Relu; }
  size_t inputSize() const override { return Size; }
  size_t outputSize() const override { return Size; }

  Vector forward(const Vector &Input) const override;
  Vector backward(const Vector &Input, const Vector &GradOut,
                  bool AccumulateParams) override;
  Matrix forwardBatch(const Matrix &X) const override;
  Matrix backwardBatch(const Matrix &X, const Matrix &GradOut) const override;

  bool isRelu() const override { return true; }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReluLayer>(Size);
  }

private:
  size_t Size;
};

} // namespace charon

#endif // CHARON_NN_RELU_H
