//===- charon_fuzz.cpp - Soundness-fuzzing campaign driver --------------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// Runs time-boxed soundness-fuzzing campaigns against the abstract
// transformers and the verifier, or replays a persisted repro file.
//
//   charon_fuzz [options]                 run a campaign
//   charon_fuzz --replay <file.repro>     replay one repro deterministically
//
// Options:
//   --seconds <s>      campaign wall-clock budget (default 60)
//   --cases <n>        stop after n cases (default: time budget only)
//   --seed <s>         campaign seed (default 1)
//   --out <dir>        write a .repro file per violating case (default
//                      fuzz-repros)
//   --domains <list>   comma-separated containment domains, e.g.
//                      Interval,Zonotope^2 (default: all domain families)
//   --samples <n>      concrete points per containment check (default 24)
//   --budget <s>       per-verify time budget inside oracles (default 1)
//   --inject-bug <eps> fault injection: pretend abstract bounds are eps
//                      tighter; a campaign must then report violations
//                      (sanity check that the oracles can catch real bugs)
//
// Exit status: 0 = no violations (or replay matched expectation),
//              1 = violations found (or replay mismatched), 2 = usage.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace charon;

namespace {

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--seconds S] [--cases N] [--seed X] [--out DIR] "
               "[--domains LIST] [--samples N] [--budget S] "
               "[--inject-bug EPS] [--replay FILE]\n",
               Argv0);
  std::exit(2);
}

int replay(const std::string &Path) {
  std::optional<FuzzRepro> Repro = loadReproFile(Path);
  if (!Repro) {
    std::fprintf(stderr, "error: cannot load repro from %s\n", Path.c_str());
    return 2;
  }
  std::printf("replaying campaign seed %llu case %ld (expect %s)\n",
              static_cast<unsigned long long>(Repro->CampaignSeed),
              Repro->CaseIndex, Repro->ExpectViolation ? "violation" : "clean");
  if (!Repro->Oracle.empty())
    std::printf("recorded: %s: %s\n", Repro->Oracle.c_str(),
                Repro->Message.c_str());

  ReplayResult Result = replayRepro(*Repro);
  for (const OracleViolation &V : Result.Violations)
    std::printf("violation: %s: %s\n", V.Oracle.c_str(), V.Message.c_str());
  std::printf("replay: %s (%s expectation)\n",
              Result.ViolationReproduced ? "violation reproduced" : "clean",
              Result.MatchesExpectation ? "matches" : "MISMATCHES");
  return Result.MatchesExpectation ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CampaignConfig Config;
  Config.ReproDir = "fuzz-repros";
  std::string ReplayPath;

  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--seconds") && I + 1 < Argc)
      Config.TimeBudgetSeconds = std::atof(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--cases") && I + 1 < Argc)
      Config.MaxCases = std::atol(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc)
      Config.Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      Config.ReproDir = Argv[++I];
    else if (!std::strcmp(Argv[I], "--domains") && I + 1 < Argc) {
      std::string List = Argv[++I];
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        std::string Token = List.substr(
            Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
        if (!Token.empty()) {
          std::optional<DomainSpec> D = parseDomainSpec(Token);
          if (!D) {
            std::fprintf(stderr, "error: unknown domain '%s'\n",
                         Token.c_str());
            return 2;
          }
          Config.Domains.push_back(*D);
        }
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    } else if (!std::strcmp(Argv[I], "--samples") && I + 1 < Argc)
      Config.Oracle.ContainmentSamples = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--budget") && I + 1 < Argc)
      Config.Oracle.VerifyBudgetSeconds = std::atof(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--inject-bug") && I + 1 < Argc)
      Config.Oracle.InjectTighten = std::atof(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--replay") && I + 1 < Argc)
      ReplayPath = Argv[++I];
    else
      usage(Argv[0]);
  }

  if (!ReplayPath.empty())
    return replay(ReplayPath);

  std::printf("charon_fuzz: seed %llu, budget %.1fs%s%s\n",
              static_cast<unsigned long long>(Config.Seed),
              Config.TimeBudgetSeconds,
              Config.MaxCases > 0 ? ", case-capped" : "",
              Config.Oracle.InjectTighten > 0.0 ? ", FAULT INJECTION ON"
                                                : "");
  CampaignResult Result = runCampaign(Config);
  const CampaignStats &S = Result.Stats;
  std::printf("cases %ld in %.1fs (%.1f/s): %ld containment, %ld precision, "
              "%ld agreement, %ld monotonicity, %ld cex, %ld resume, "
              "%ld cegar, %ld certificate checks\n",
              S.Cases, S.Seconds, S.Seconds > 0 ? S.Cases / S.Seconds : 0.0,
              S.ContainmentChecks, S.PrecisionChecks, S.AgreementChecks,
              S.MonotonicityChecks, S.CexChecks, S.ResumeChecks,
              S.CegarChecks, S.CertificateChecks);

  if (Result.Violations.empty()) {
    std::printf("no soundness-oracle violations\n");
    return 0;
  }
  std::printf("%ld VIOLATING CASES:\n", S.Violations);
  for (size_t I = 0; I < Result.Violations.size(); ++I) {
    const FuzzRepro &R = Result.Violations[I];
    std::printf("  case %ld: %s: %s\n", R.CaseIndex, R.Oracle.c_str(),
                R.Message.c_str());
    if (I < Result.ReproPaths.size() && !Result.ReproPaths[I].empty())
      std::printf("    repro: %s (replay with --replay)\n",
                  Result.ReproPaths[I].c_str());
  }
  return 1;
}
