//===- JsonLine.cpp - Minimal JSON-lines object parser/printer ----------------===//

#include "support/JsonLine.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace charon;
using namespace charon::json;

namespace {

class LineParser {
public:
  explicit LineParser(const std::string &Line)
      : P(Line.c_str()), End(Line.c_str() + Line.size()) {}

  /// Parses the whole line as one object; false on any syntax error.
  bool parse(Object &Out) {
    skipWs();
    if (!consume('{'))
      return fail("expected '{'");
    skipWs();
    if (consume('}'))
      return atEnd();
    while (true) {
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':'");
      Value V;
      if (!parseValue(V))
        return false;
      if (!Out.emplace(std::move(Key), std::move(V)).second)
        return fail("duplicate key");
      skipWs();
      if (consume(',')) {
        skipWs();
        continue;
      }
      if (consume('}'))
        return atEnd();
      return fail("expected ',' or '}'");
    }
  }

  const std::string &error() const { return Err; }

private:
  bool atEnd() {
    skipWs();
    return P == End ? true : fail("trailing characters");
  }

  bool fail(const char *Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  void skipWs() {
    while (P != End && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }

  bool consume(char C) {
    if (P != End && *P == C) {
      ++P;
      return true;
    }
    return false;
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (!consume('"'))
      return fail("expected string");
    Out.clear();
    while (P != End && *P != '"') {
      char C = *P++;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (P == End)
        return fail("truncated escape");
      switch (*P++) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      default:
        return fail("unsupported escape");
      }
    }
    if (!consume('"'))
      return fail("unterminated string");
    return true;
  }

  bool parseNumber(double &Out) {
    char *NumEnd = nullptr;
    Out = std::strtod(P, &NumEnd);
    if (NumEnd == P)
      return fail("expected number");
    P = NumEnd;
    return true;
  }

  bool parseValue(Value &V) {
    skipWs();
    if (P == End)
      return fail("missing value");
    if (*P == '"') {
      V.K = Value::Str;
      return parseString(V.S);
    }
    if (*P == '[') {
      ++P;
      V.K = Value::NumArray;
      skipWs();
      if (consume(']'))
        return true;
      while (true) {
        double X;
        if (!parseNumber(X))
          return false;
        V.A.push_back(X);
        skipWs();
        if (consume(',')) {
          skipWs();
          continue;
        }
        if (consume(']'))
          return true;
        return fail("expected ',' or ']'");
      }
    }
    if (!std::strncmp(P, "true", 4)) {
      P += 4;
      V.K = Value::Bool;
      V.B = true;
      return true;
    }
    if (!std::strncmp(P, "false", 5)) {
      P += 5;
      V.K = Value::Bool;
      V.B = false;
      return true;
    }
    V.K = Value::Num;
    return parseNumber(V.N);
  }

  const char *P;
  const char *End;
  std::string Err;
};

} // namespace

bool charon::json::parseObjectLine(const std::string &Line, Object &Out,
                                   std::string *Error) {
  LineParser Parser(Line);
  if (Parser.parse(Out))
    return true;
  if (Error)
    *Error = Parser.error();
  return false;
}

void charon::json::appendEscaped(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out.push_back(C);
    }
  }
  Out.push_back('"');
}

void charon::json::appendNumber(std::string &Out, double X) {
  char Buf[40];
  // %.17g round-trips every finite double exactly.
  std::snprintf(Buf, sizeof(Buf), "%.17g", X);
  Out += Buf;
}

void charon::json::appendNumberArray(std::string &Out,
                                     const std::vector<double> &A) {
  Out.push_back('[');
  for (size_t I = 0; I < A.size(); ++I) {
    if (I)
      Out.push_back(',');
    appendNumber(Out, A[I]);
  }
  Out.push_back(']');
}

std::string charon::json::formatU64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  return Buf;
}

bool charon::json::parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size() || S[0] == '-')
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}
