//===- Network.cpp - Sequential feed-forward network ------------------------===//

#include "nn/Network.h"

#include <cassert>
#include <limits>

using namespace charon;

void Network::addLayer(std::unique_ptr<Layer> L) {
  assert(L && "null layer");
  assert((Layers.empty() || Layers.back()->outputSize() == L->inputSize()) &&
         "layer input size must match previous output size");
  Layers.push_back(std::move(L));
}

size_t Network::inputSize() const {
  assert(!Layers.empty() && "empty network");
  return Layers.front()->inputSize();
}

size_t Network::outputSize() const {
  assert(!Layers.empty() && "empty network");
  return Layers.back()->outputSize();
}

Vector Network::evaluate(const Vector &Input) const {
  Vector X = Input;
  for (const auto &L : Layers)
    X = L->forward(X);
  return X;
}

std::vector<Vector> Network::evaluateWithActivations(const Vector &Input) const {
  std::vector<Vector> Acts;
  Acts.reserve(Layers.size() + 1);
  Acts.push_back(Input);
  for (const auto &L : Layers)
    Acts.push_back(L->forward(Acts.back()));
  return Acts;
}

size_t Network::classify(const Vector &Input) const {
  return argmax(evaluate(Input));
}

Matrix Network::evaluateBatch(const Matrix &X) const {
  Matrix Y = X;
  for (const auto &L : Layers)
    Y = L->forwardBatch(Y);
  return Y;
}

std::vector<Matrix> Network::evaluateBatchWithActivations(const Matrix &X) const {
  std::vector<Matrix> Acts;
  Acts.reserve(Layers.size() + 1);
  Acts.push_back(X);
  for (const auto &L : Layers)
    Acts.push_back(L->forwardBatch(Acts.back()));
  return Acts;
}

Vector Network::inputGradient(const Vector &Input, const Vector &Seed) const {
  std::vector<Vector> Acts = evaluateWithActivations(Input);
  Vector Grad = Seed;
  for (size_t Iu = Layers.size(); Iu > 0; --Iu) {
    size_t I = Iu - 1;
    Grad = Layers[I]->backward(Acts[I], Grad, /*AccumulateParams=*/false);
  }
  return Grad;
}

double Network::objective(const Vector &Input, size_t K) const {
  Vector Y = evaluate(Input);
  assert(K < Y.size() && "target class out of range");
  double Best = -std::numeric_limits<double>::infinity();
  for (size_t J = 0, E = Y.size(); J < E; ++J)
    if (J != K && Y[J] > Best)
      Best = Y[J];
  return Y[K] - Best;
}

Vector Network::objectiveGradient(const Vector &Input, size_t K) const {
  Vector Y = evaluate(Input);
  assert(K < Y.size() && "target class out of range");
  size_t BestJ = K == 0 ? 1 : 0;
  for (size_t J = 0, E = Y.size(); J < E; ++J)
    if (J != K && Y[J] > Y[BestJ])
      BestJ = J;
  // d/dx [ y_K - y_{j*} ] with j* the active competitor class.
  Vector Seed(Y.size());
  Seed[K] = 1.0;
  Seed[BestJ] = -1.0;
  return inputGradient(Input, Seed);
}

Vector Network::objectiveBatch(const Matrix &X, size_t K) const {
  Matrix Y = evaluateBatch(X);
  assert(K < Y.cols() && "target class out of range");
  Vector F(Y.rows());
  for (size_t I = 0, B = Y.rows(); I < B; ++I) {
    const double *Row = Y.row(I);
    double Best = -std::numeric_limits<double>::infinity();
    for (size_t J = 0, E = Y.cols(); J < E; ++J)
      if (J != K && Row[J] > Best)
        Best = Row[J];
    F[I] = Row[K] - Best;
  }
  return F;
}

Matrix Network::objectiveGradientBatch(const Matrix &X, size_t K) const {
  std::vector<Matrix> Acts = evaluateBatchWithActivations(X);
  const Matrix &Y = Acts.back();
  assert(K < Y.cols() && "target class out of range");
  // Per-row seed for d/dx [ y_K - y_{j*} ], with j* resolved by the same
  // first-strictly-greater scan the scalar objectiveGradient uses.
  Matrix Grad(Y.rows(), Y.cols());
  for (size_t I = 0, B = Y.rows(); I < B; ++I) {
    const double *Row = Y.row(I);
    size_t BestJ = K == 0 ? 1 : 0;
    for (size_t J = 0, E = Y.cols(); J < E; ++J)
      if (J != K && Row[J] > Row[BestJ])
        BestJ = J;
    double *Seed = Grad.row(I);
    Seed[K] = 1.0;
    Seed[BestJ] = -1.0;
  }
  for (size_t Iu = Layers.size(); Iu > 0; --Iu) {
    size_t I = Iu - 1;
    Grad = Layers[I]->backwardBatch(Acts[I], Grad);
  }
  return Grad;
}

Network Network::clone() const {
  Network Copy;
  for (const auto &L : Layers)
    Copy.addLayer(L->clone());
  Copy.Name = Name;
  return Copy;
}

void Network::zeroGradients() {
  for (auto &L : Layers)
    L->zeroGradients();
}

void Network::applyGradients(double LearningRate, double BatchSize) {
  for (auto &L : Layers)
    L->applyGradients(LearningRate, BatchSize);
}

Vector Network::backpropagate(const std::vector<Vector> &Activations,
                              const Vector &GradOut) {
  assert(Activations.size() == Layers.size() + 1 &&
         "activation trace size mismatch");
  Vector Grad = GradOut;
  for (size_t Iu = Layers.size(); Iu > 0; --Iu) {
    size_t I = Iu - 1;
    Grad = Layers[I]->backward(Activations[I], Grad, /*AccumulateParams=*/true);
  }
  return Grad;
}
