file(REMOVE_RECURSE
  "CMakeFiles/image_robustness.dir/image_robustness.cpp.o"
  "CMakeFiles/image_robustness.dir/image_robustness.cpp.o.d"
  "image_robustness"
  "image_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
