# Empty compiler generated dependencies file for bench_rq2_falsification.
# This may be replaced when dependencies are built.
