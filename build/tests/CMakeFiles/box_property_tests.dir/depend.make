# Empty dependencies file for box_property_tests.
# This may be replaced when dependencies are built.
