//===- Timer.cpp - Wall/CPU timers and time budgets -----------------------===//

#include "support/Timer.h"

#include <ctime>
#include <limits>

using namespace charon;

double charon::processCpuSeconds() {
  timespec Ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &Ts) != 0)
    return 0.0;
  return static_cast<double>(Ts.tv_sec) +
         static_cast<double>(Ts.tv_nsec) * 1e-9;
}

double Deadline::remaining() const {
  if (LimitSeconds < 0.0)
    return std::numeric_limits<double>::infinity();
  double Left = LimitSeconds - Watch.seconds();
  return Left > 0.0 ? Left : 0.0;
}
