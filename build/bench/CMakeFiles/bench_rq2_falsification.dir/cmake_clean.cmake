file(REMOVE_RECURSE
  "CMakeFiles/bench_rq2_falsification.dir/bench_rq2_falsification.cpp.o"
  "CMakeFiles/bench_rq2_falsification.dir/bench_rq2_falsification.cpp.o.d"
  "bench_rq2_falsification"
  "bench_rq2_falsification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq2_falsification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
