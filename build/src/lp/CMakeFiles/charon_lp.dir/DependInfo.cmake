
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/Simplex.cpp" "src/lp/CMakeFiles/charon_lp.dir/Simplex.cpp.o" "gcc" "src/lp/CMakeFiles/charon_lp.dir/Simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/charon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/charon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
