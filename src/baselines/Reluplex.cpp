//===- Reluplex.cpp - Complete LP branch-and-bound baseline -------------------===//

#include "baselines/Reluplex.h"

#include "abstract/SymbolicIntervalElement.h"
#include "lp/Simplex.h"
#include "support/Check.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

using namespace charon;

namespace {

/// Phase decision for one ReLU neuron in the branch-and-bound tree.
enum class Phase : int8_t { Undecided, Active, Inactive };

/// The LP encoding of the network under a vector of phase decisions.
struct Encoding {
  LpProblem Lp;
  std::vector<double> VarLo, VarHi; ///< bounds parallel to LP variables
  /// Final-layer symbolic expressions over LP variables (+ constant).
  std::vector<std::vector<double>> OutCoef;
  std::vector<double> OutConst;
  /// Globally indexed ReLU neurons that remained undecided, with their
  /// crossing widths (for branch selection).
  std::vector<std::pair<int, double>> Undecided;
  bool ProvedEmpty = false; ///< a phase constraint is trivially impossible
};

/// Interval evaluation of a symbolic expression over variable bounds.
void exprBounds(const std::vector<double> &Coef, double Const,
                const std::vector<double> &VarLo,
                const std::vector<double> &VarHi, double &Lo, double &Hi) {
  Lo = Const;
  Hi = Const;
  for (size_t V = 0, E = Coef.size(); V < E; ++V) {
    double C = Coef[V];
    if (C > 0.0) {
      Lo += C * VarLo[V];
      Hi += C * VarHi[V];
    } else if (C < 0.0) {
      Lo += C * VarHi[V];
      Hi += C * VarLo[V];
    }
  }
}

/// Sound pre-activation bounds for every ReLU neuron over \p Region,
/// indexed by global ReLU cursor, computed once with symbolic-interval
/// propagation. Real complete verifiers run exactly this kind of bound
/// tightening before encoding; plain interval bounds mark nearly every
/// deep neuron unstable and make the LPs enormous.
void computePreReluBounds(const Network &Net, const Box &Region,
                          std::vector<double> &PreLo,
                          std::vector<double> &PreHi) {
  SymbolicIntervalElement Elem(Region);
  for (size_t I = 0, E = Net.numLayers(); I < E; ++I) {
    const Layer &L = Net.layer(I);
    if (L.isIdentity())
      continue;
    if (auto Affine = L.affineForm()) {
      Elem.applyAffine(*Affine->W, *Affine->B);
      continue;
    }
    if (L.isRelu()) {
      for (size_t D = 0, N = Elem.dim(); D < N; ++D) {
        PreLo.push_back(Elem.lowerBound(D));
        PreHi.push_back(Elem.upperBound(D));
      }
      Elem.applyRelu();
      continue;
    }
    charon_unreachable(
        "reluplex baseline supports affine + ReLU networks only");
  }
}

/// Builds the LP encoding of \p Net over \p Region under \p Decisions.
/// Stable neurons are folded symbolically; undecided ones get the triangle
/// relaxation; decided ones get their phase constraint. \p PreLo / \p PreHi
/// are the tightened global pre-activation bounds (sound at every node:
/// phase constraints only shrink the feasible set).
/// \p FoldStable selects the encoding style: when true, neurons whose phase
/// is known are substituted symbolically so expressions stay in terms of
/// the network inputs (a modern, Planet/MILP-style encoding); when false,
/// every active neuron keeps its own LP variable tied by an equality
/// constraint — the original Reluplex's one-variable-per-neuron tableau,
/// whose bounds degrade to plain layer-wise interval propagation and whose
/// LPs are correspondingly enormous.
Encoding buildEncoding(const Network &Net, const Box &Region,
                       const std::vector<Phase> &Decisions,
                       const std::vector<double> &PreLo,
                       const std::vector<double> &PreHi, bool FoldStable) {
  Encoding Enc;
  size_t NumInputs = Region.dim();

  // LP variables start as the network inputs.
  for (size_t I = 0; I < NumInputs; ++I) {
    Enc.Lp.addVariable(Region.lower()[I], Region.upper()[I]);
    Enc.VarLo.push_back(Region.lower()[I]);
    Enc.VarHi.push_back(Region.upper()[I]);
  }

  // Current layer's symbolic rows over LP variables.
  std::vector<std::vector<double>> Coef(NumInputs,
                                        std::vector<double>(NumInputs, 0.0));
  std::vector<double> Const(NumInputs, 0.0);
  for (size_t I = 0; I < NumInputs; ++I)
    Coef[I][I] = 1.0;

  auto SparseTerms = [](const std::vector<double> &Row) {
    std::vector<std::pair<int, double>> Terms;
    for (size_t V = 0; V < Row.size(); ++V)
      if (Row[V] != 0.0)
        Terms.emplace_back(static_cast<int>(V), Row[V]);
    return Terms;
  };

  int ReluCursor = 0;
  for (size_t LayerIdx = 0, E = Net.numLayers(); LayerIdx < E; ++LayerIdx) {
    const Layer &L = Net.layer(LayerIdx);
    if (L.isIdentity())
      continue;
    if (auto Affine = L.affineForm()) {
      const Matrix &W = *Affine->W;
      const Vector &B = *Affine->B;
      size_t OutDim = W.rows();
      size_t NumVars = Enc.VarLo.size();
      std::vector<std::vector<double>> NewCoef(
          OutDim, std::vector<double>(NumVars, 0.0));
      std::vector<double> NewConst(OutDim, 0.0);
      for (size_t R = 0; R < OutDim; ++R) {
        NewConst[R] = B[R];
        for (size_t C = 0, In = W.cols(); C < In; ++C) {
          double Wrc = W(R, C);
          if (Wrc == 0.0)
            continue;
          NewConst[R] += Wrc * Const[C];
          const std::vector<double> &Src = Coef[C];
          std::vector<double> &Dst = NewCoef[R];
          for (size_t V = 0; V < Src.size(); ++V)
            Dst[V] += Wrc * Src[V];
        }
      }
      Coef = std::move(NewCoef);
      Const = std::move(NewConst);
      continue;
    }
    if (L.isRelu()) {
      size_t NumVars = Enc.VarLo.size();
      for (size_t I = 0, N = Coef.size(); I < N; ++I, ++ReluCursor) {
        double Lo, Hi;
        exprBounds(Coef[I], Const[I], Enc.VarLo, Enc.VarHi, Lo, Hi);
        // Intersect with the globally tightened symbolic bounds.
        Lo = std::max(Lo, PreLo[ReluCursor]);
        Hi = std::min(Hi, PreHi[ReluCursor]);
        if (Lo > Hi) {
          // The node's local bounds contradict the global ones; numerics
          // aside this cannot happen, so collapse to the global bounds.
          Lo = PreLo[ReluCursor];
          Hi = PreHi[ReluCursor];
        }
        Phase P = Decisions[ReluCursor];
        if (P == Phase::Undecided) {
          if (Lo >= 0.0)
            P = Phase::Active; // stable: fold without constraints
          else if (Hi <= 0.0)
            P = Phase::Inactive;
        } else {
          // Branch constraint: x >= 0 (active) or x <= 0 (inactive). If the
          // bounds already contradict the decision, the region is empty.
          if (P == Phase::Active && Hi < 0.0) {
            Enc.ProvedEmpty = true;
            return Enc;
          }
          if (P == Phase::Inactive && Lo > 0.0) {
            Enc.ProvedEmpty = true;
            return Enc;
          }
        }

        if (P == Phase::Active) {
          if (Lo < 0.0) {
            // Forced-active branch: add x >= 0, i.e. -x <= 0.
            std::vector<double> Neg = Coef[I];
            for (double &V : Neg)
              V = -V;
            Enc.Lp.addLeqConstraint(SparseTerms(Neg), Const[I]);
          }
          if (FoldStable)
            continue; // y = x symbolically (no new variable).
          // Reluplex-style: a fresh variable tied to the pre-activation by
          // an equality constraint.
          int Y = Enc.Lp.addVariable(std::max(0.0, Lo), std::max(0.0, Hi));
          Enc.VarLo.push_back(std::max(0.0, Lo));
          Enc.VarHi.push_back(std::max(0.0, Hi));
          NumVars = Enc.VarLo.size();
          std::vector<std::pair<int, double>> EqTerms = SparseTerms(Coef[I]);
          EqTerms.emplace_back(Y, -1.0);
          Enc.Lp.addEqConstraint(std::move(EqTerms), -Const[I]);
          Coef[I].assign(NumVars, 0.0);
          Coef[I][Y] = 1.0;
          Const[I] = 0.0;
          continue;
        }
        if (P == Phase::Inactive) {
          if (Hi > 0.0)
            Enc.Lp.addLeqConstraint(SparseTerms(Coef[I]), -Const[I]);
          std::fill(Coef[I].begin(), Coef[I].end(), 0.0);
          Const[I] = 0.0;
          continue; // y = 0.
        }

        // Genuinely undecided: triangle relaxation with a fresh variable
        // y in [0, Hi]: y >= x, y >= 0 (bound), y <= Lambda * (x - Lo).
        int Y = Enc.Lp.addVariable(0.0, Hi);
        // Keep VarLo/VarHi parallel for later interval evaluations.
        Enc.VarLo.push_back(0.0);
        Enc.VarHi.push_back(Hi);
        NumVars = Enc.VarLo.size();

        // y >= x: x - y <= 0.
        std::vector<std::pair<int, double>> GeTerms = SparseTerms(Coef[I]);
        GeTerms.emplace_back(Y, -1.0);
        Enc.Lp.addLeqConstraint(std::move(GeTerms), -Const[I]);

        // y <= Lambda (x - Lo): y - Lambda x <= Lambda (Const - ... ) —
        // expanded: y - Lambda * sum(c v) <= Lambda * (Const[I] is inside x)
        double Lambda = Hi / (Hi - Lo);
        std::vector<std::pair<int, double>> UbTerms;
        for (size_t V = 0; V < Coef[I].size(); ++V)
          if (Coef[I][V] != 0.0)
            UbTerms.emplace_back(static_cast<int>(V), -Lambda * Coef[I][V]);
        UbTerms.emplace_back(Y, 1.0);
        Enc.Lp.addLeqConstraint(std::move(UbTerms),
                                Lambda * (Const[I] - Lo));

        Enc.Undecided.emplace_back(ReluCursor, Hi - Lo);

        // Replace the symbolic row by the fresh variable.
        Coef[I].assign(NumVars, 0.0);
        Coef[I][Y] = 1.0;
        Const[I] = 0.0;
      }
      // Pad all rows to the (possibly grown) variable count.
      size_t FinalVars = Enc.VarLo.size();
      for (auto &Row : Coef)
        Row.resize(FinalVars, 0.0);
      continue;
    }
    charon_unreachable(
        "reluplex baseline supports affine + ReLU networks only");
  }

  size_t FinalVars = Enc.VarLo.size();
  for (auto &Row : Coef)
    Row.resize(FinalVars, 0.0);
  Enc.OutCoef = std::move(Coef);
  Enc.OutConst = std::move(Const);
  return Enc;
}

/// Counts the ReLU neurons of the network (global phase-vector size).
size_t countRelus(const Network &Net) {
  size_t Count = 0;
  for (size_t I = 0, E = Net.numLayers(); I < E; ++I)
    if (Net.layer(I).isRelu())
      Count += Net.layer(I).inputSize();
  return Count;
}

/// True when every layer fits the LP encoding: affine or ReLU (identity
/// layers pass through). Smooth activations, pooling, and residual blocks
/// do not — callers get a sound Timeout instead of an abort, so the
/// CompleteFallback path stays safe on the expanded layer zoo.
bool encodable(const Network &Net) {
  for (size_t I = 0, E = Net.numLayers(); I < E; ++I) {
    const Layer &L = Net.layer(I);
    if (L.isIdentity() || L.affineForm() || L.isRelu())
      continue;
    return false;
  }
  return true;
}

} // namespace

ReluplexResult charon::reluplexVerify(const Network &Net,
                                      const RobustnessProperty &Prop,
                                      const ReluplexConfig &Config) {
  Deadline Budget(Config.TimeLimitSeconds);
  Stopwatch Watch;
  ReluplexResult Result;

  if (!encodable(Net)) {
    // Smooth activation / pooling / residual layers have no exact LP
    // encoding here; report the sound "don't know" verdict.
    Result.Result = Outcome::Timeout;
    Result.Seconds = Watch.seconds();
    return Result;
  }

  size_t K = Prop.TargetClass;
  size_t NumRelus = countRelus(Net);

  // Optional one-time bound tightening over the whole region; without it
  // the per-node interval bounds are used alone (original Reluplex).
  std::vector<double> PreLo, PreHi;
  if (Config.SymbolicBoundTightening) {
    PreLo.reserve(NumRelus);
    PreHi.reserve(NumRelus);
    computePreReluBounds(Net, Prop.Region, PreLo, PreHi);
    assert(PreLo.size() == NumRelus && "bound/relu count mismatch");
  } else {
    PreLo.assign(NumRelus, -std::numeric_limits<double>::infinity());
    PreHi.assign(NumRelus, std::numeric_limits<double>::infinity());
  }

  std::vector<std::vector<Phase>> Work;
  Work.emplace_back(NumRelus, Phase::Undecided);

  constexpr double ProofTol = 1e-7;

  while (!Work.empty()) {
    if (Budget.expired() || Result.Nodes >= Config.MaxNodes) {
      Result.Result = Outcome::Timeout;
      Result.Seconds = Watch.seconds();
      return Result;
    }
    std::vector<Phase> Decisions = std::move(Work.back());
    Work.pop_back();
    ++Result.Nodes;

    Encoding Enc =
        buildEncoding(Net, Prop.Region, Decisions, PreLo, PreHi,
                      /*FoldStable=*/Config.SymbolicBoundTightening);
    if (Enc.ProvedEmpty)
      continue; // Contradictory phases: no inputs here.

    size_t NumVars = Enc.VarLo.size();
    bool NodeRefuted = false;
    bool NodeProved = true;
    for (size_t J = 0, M = Net.outputSize(); J < M; ++J) {
      if (J == K)
        continue;
      if (Budget.expired()) {
        Result.Result = Outcome::Timeout;
        Result.Seconds = Watch.seconds();
        return Result;
      }
      Vector Objective(NumVars);
      for (size_t V = 0; V < NumVars; ++V)
        Objective[V] = Enc.OutCoef[J][V] - Enc.OutCoef[K][V];
      double ConstDiff = Enc.OutConst[J] - Enc.OutConst[K];

      ++Result.LpSolves;
      LpResult Lp = Enc.Lp.maximize(Objective, &Budget);
      if (Lp.Status == LpStatus::Infeasible)
        continue; // Phase constraints carve out an empty region.
      if (Lp.Status != LpStatus::Optimal) {
        // Numerical trouble: stay sound by refusing to prove this node.
        NodeProved = false;
        continue;
      }
      double MaxDiff = Lp.Value + ConstDiff;
      if (MaxDiff <= ProofTol)
        continue; // Class J cannot beat K anywhere in this node.

      NodeProved = false;
      // Reluplex only reports SAT from a converged assignment — i.e. one
      // satisfying every ReLU constraint exactly, which here means a leaf
      // with all phases fixed. Relaxation optima at inner nodes are not
      // witnesses (this is why the paper observes Reluplex falsifying
      // almost nothing, Sec. 7.3).
      if (Enc.Undecided.empty()) {
        Vector Candidate(Prop.Region.dim());
        for (size_t V = 0; V < Candidate.size(); ++V)
          Candidate[V] = Lp.X[V];
        Candidate = Prop.Region.project(Candidate);
        if (Net.objective(Candidate, K) <= 0.0) {
          Result.Result = Outcome::Falsified;
          Result.Counterexample = std::move(Candidate);
          Result.Seconds = Watch.seconds();
          return Result;
        }
        // A leaf is exact up to LP tolerances; a strictly positive optimum
        // whose candidate fails concretely means numerics — handled
        // conservatively below.
        NodeRefuted = true;
      }
      break; // Must branch (or handle exact leaf); other classes can wait.
    }

    if (NodeProved)
      continue;

    if (Enc.Undecided.empty()) {
      if (NodeRefuted) {
        // Exact leaf claims a violation but the candidate did not check
        // out concretely: declare timeout rather than risk unsoundness.
        Result.Result = Outcome::Timeout;
        Result.Seconds = Watch.seconds();
        return Result;
      }
      continue;
    }

    // Branch on the first undecided neuron (topological order), mirroring
    // the original Reluplex's lazy, unprioritized case splitting.
    int BranchId = Enc.Undecided.front().first;

    std::vector<Phase> ActiveChild = Decisions;
    ActiveChild[BranchId] = Phase::Active;
    std::vector<Phase> InactiveChild = std::move(Decisions);
    InactiveChild[BranchId] = Phase::Inactive;
    Work.push_back(std::move(ActiveChild));
    Work.push_back(std::move(InactiveChild));
  }

  Result.Result = Outcome::Verified;
  Result.Seconds = Watch.seconds();
  return Result;
}
