//===- AvgPool2D.cpp - 2-D average pooling layer ----------------------------===//

#include "nn/AvgPool2D.h"

using namespace charon;

AvgPool2DLayer::AvgPool2DLayer(TensorShape In, int PoolH, int PoolW,
                               int Stride)
    : InShape(In), PH(PoolH), PW(PoolW), S(Stride) {
  OutShape.Channels = In.Channels;
  OutShape.Height = (In.Height - PoolH) / Stride + 1;
  OutShape.Width = (In.Width - PoolW) / Stride + 1;
  assert(OutShape.Height > 0 && OutShape.Width > 0 && "pool output is empty");
  Windows.resize(OutShape.size());
  for (int C = 0; C < OutShape.Channels; ++C) {
    for (int Oy = 0; Oy < OutShape.Height; ++Oy) {
      for (int Ox = 0; Ox < OutShape.Width; ++Ox) {
        std::vector<int> &Pool = Windows[OutShape.index(C, Oy, Ox)];
        for (int Py = 0; Py < PH; ++Py)
          for (int Px = 0; Px < PW; ++Px)
            Pool.push_back(InShape.index(C, Oy * S + Py, Ox * S + Px));
      }
    }
  }
}

Vector AvgPool2DLayer::forward(const Vector &Input) const {
  assert(Input.size() == static_cast<size_t>(InShape.size()) &&
         "avgpool input size mismatch");
  double Inv = 1.0 / (PH * PW);
  Vector Out(OutShape.size());
  // Accumulate Inv * x term by term in ascending input-index order — the
  // same sequence of nonzero contributions the lowered matrix row produces,
  // so concrete eval and the affine abstract view agree.
  for (size_t O = 0, E = Windows.size(); O < E; ++O) {
    double Acc = 0.0;
    for (int Idx : Windows[O])
      Acc += Inv * Input[Idx];
    Out[O] = Acc;
  }
  return Out;
}

Vector AvgPool2DLayer::backward(const Vector &Input, const Vector &GradOut,
                                bool) {
  assert(GradOut.size() == static_cast<size_t>(OutShape.size()) &&
         "avgpool gradient size mismatch");
  (void)Input;
  double Inv = 1.0 / (PH * PW);
  Vector GradIn(InShape.size());
  for (size_t O = 0, E = Windows.size(); O < E; ++O)
    for (int Idx : Windows[O])
      GradIn[Idx] += Inv * GradOut[O];
  return GradIn;
}

void AvgPool2DLayer::buildLowered() const {
  double Inv = 1.0 / (PH * PW);
  auto Form = std::make_unique<LoweredForm>();
  Form->W = Matrix(OutShape.size(), InShape.size());
  Form->Bias = Vector(OutShape.size());
  for (size_t O = 0, E = Windows.size(); O < E; ++O)
    for (int Idx : Windows[O])
      Form->W(O, Idx) = Inv;
  Lowered = std::move(Form);
}

std::optional<AffineView> AvgPool2DLayer::affineForm() const {
  if (!Lowered)
    buildLowered();
  return AffineView{&Lowered->W, &Lowered->Bias};
}
