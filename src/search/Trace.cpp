//===- Trace.cpp - Structured proof-search trace events -----------------------===//

#include "search/Trace.h"

#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

using namespace charon;

std::string charon::traceEventToJson(const TraceEvent &Event) {
  std::ostringstream Os;
  Os << std::setprecision(17);
  if (Event.Kind && std::string_view(Event.Kind) == "cegar_round") {
    Os << "{\"kind\":\"cegar_round\",\"round\":" << Event.Round
       << ",\"abstract_neurons\":" << Event.AbstractNeurons
       << ",\"original_neurons\":" << Event.OriginalNeurons
       << ",\"spurious\":" << Event.SpuriousCexes << ",\"outcome\":\""
       << Event.Outcome << "\",\"seconds\":" << Event.Seconds << "}";
    return Os.str();
  }
  Os << "{\"path\":\"" << Event.Path << "\",\"depth\":" << Event.Depth
     << ",\"diameter\":" << Event.Diameter
     << ",\"pgd_objective\":" << Event.PgdObjective;
  if (Event.DomainChosen)
    Os << ",\"domain\":\""
       << toString(DomainSpec{Event.Domain.Base, 1}) << "\""
       << ",\"disjuncts\":" << Event.Domain.Disjuncts;
  if (Event.MarginKnown)
    Os << ",\"margin\":" << Event.Margin;
  Os << ",\"outcome\":\"" << Event.Outcome
     << "\",\"seconds\":" << Event.Seconds << "}";
  return Os.str();
}

TraceSink charon::makeJsonlTraceSink(std::ostream &Os) {
  auto Mutex = std::make_shared<std::mutex>();
  return [&Os, Mutex](const TraceEvent &Event) {
    std::string Line = traceEventToJson(Event);
    std::lock_guard<std::mutex> Lock(*Mutex);
    Os << Line << "\n";
  };
}
