//===- Io.h - Network (de)serialization --------------------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization for networks so trained models can be saved once and
/// re-verified across runs (and inspected by hand). The format is a simple
/// line-oriented description; see saveNetwork() for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_NN_IO_H
#define CHARON_NN_IO_H

#include "nn/Network.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace charon {

/// Writes \p Net to \p Os.
///
/// Format (whitespace separated):
/// \code
///   charon-network 1 <num-layers>
///   dense <in> <out> <out*in weights row-major> <out biases>
///   relu <n> | sigmoid <n> | tanh <n> | flatten <n>
///   conv <inC> <inH> <inW> <outC> <kH> <kW> <stride> <pad> <weights> <bias>
///   maxpool <inC> <inH> <inW> <poolH> <poolW> <stride>
///   avgpool <inC> <inH> <inW> <poolH> <poolW> <stride>
///   residual <num-body-layers> <body layers...>
/// \endcode
/// Residual bodies recurse into the same per-layer grammar; the loader
/// rejects bodies whose shapes the analyzer could not handle (the same
/// affine/activation/identity restriction the ResidualLayer constructor
/// asserts).
void saveNetwork(const Network &Net, std::ostream &Os);

/// Parses a network from \p Is; returns nullopt on malformed input.
std::optional<Network> loadNetwork(std::istream &Is);

/// Convenience: save to / load from a file path. Load returns nullopt when
/// the file is missing or malformed.
bool saveNetworkFile(const Network &Net, const std::string &Path);
std::optional<Network> loadNetworkFile(const std::string &Path);

} // namespace charon

#endif // CHARON_NN_IO_H
