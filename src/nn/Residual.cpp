//===- Residual.cpp - Residual (skip-connection) block ----------------------===//

#include "nn/Residual.h"

#include <cassert>

using namespace charon;

ResidualLayer::ResidualLayer(Network F) : Body(std::move(F)) {
  assert(Body.numLayers() > 0 && "residual body must be non-empty");
  assert(Body.inputSize() == Body.outputSize() &&
         "identity skip needs matching body input/output sizes");
#ifndef NDEBUG
  for (size_t I = 0, E = Body.numLayers(); I < E; ++I) {
    const Layer &L = Body.layer(I);
    assert((L.affineForm() || L.activationKind() || L.isIdentity()) &&
           "residual body layers must be affine, activation, or identity");
  }
#endif
}

Vector ResidualLayer::forward(const Vector &Input) const {
  assert(Input.size() == inputSize() && "residual input size mismatch");
  Vector Out = Body.evaluate(Input);
  for (size_t I = 0, N = Out.size(); I < N; ++I)
    Out[I] = Input[I] + Out[I];
  return Out;
}

Vector ResidualLayer::backward(const Vector &Input, const Vector &GradOut,
                               bool AccumulateParams) {
  assert(Input.size() == inputSize() && GradOut.size() == outputSize() &&
         "residual gradient size mismatch");
  // dL/dx = GradOut + J_F(x)^T GradOut: replay the body forward to get every
  // intermediate activation, then walk its layers in reverse.
  std::vector<Vector> Acts = Body.evaluateWithActivations(Input);
  Vector G = GradOut;
  for (size_t I = Body.numLayers(); I > 0; --I)
    G = Body.layer(I - 1).backward(Acts[I - 1], G, AccumulateParams);
  for (size_t I = 0, N = G.size(); I < N; ++I)
    G[I] = GradOut[I] + G[I];
  return G;
}

Matrix ResidualLayer::forwardBatch(const Matrix &X) const {
  assert(X.cols() == inputSize() && "residual batched input size mismatch");
  Matrix Out = Body.evaluateBatch(X);
  for (size_t R = 0, B = Out.rows(); R < B; ++R)
    for (size_t C = 0, N = Out.cols(); C < N; ++C)
      Out(R, C) = X(R, C) + Out(R, C);
  return Out;
}

Matrix ResidualLayer::backwardBatch(const Matrix &X,
                                    const Matrix &GradOut) const {
  assert(X.cols() == inputSize() && GradOut.cols() == outputSize() &&
         X.rows() == GradOut.rows() && "residual batched gradient mismatch");
  std::vector<Matrix> Acts = Body.evaluateBatchWithActivations(X);
  Matrix G = GradOut;
  for (size_t I = Body.numLayers(); I > 0; --I)
    G = Body.layer(I - 1).backwardBatch(Acts[I - 1], G);
  for (size_t R = 0, B = G.rows(); R < B; ++R)
    for (size_t C = 0, N = G.cols(); C < N; ++C)
      G(R, C) = GradOut(R, C) + G(R, C);
  return G;
}

void ResidualLayer::applyGradients(double LearningRate, double BatchSize) {
  Plan.reset();
  Body.applyGradients(LearningRate, BatchSize);
}

void ResidualLayer::zeroGradients() { Body.zeroGradients(); }

const ResidualLayer::ResidualPlan &ResidualLayer::plan() const {
  if (Plan)
    return *Plan;
  size_t N = inputSize();
  auto P = std::make_unique<ResidualPlan>();

  // Dup = [I; I]: state becomes [x; x], skip copy in the first N coords.
  P->DupW = Matrix(2 * N, N);
  for (size_t I = 0; I < N; ++I) {
    P->DupW(I, I) = 1.0;
    P->DupW(N + I, I) = 1.0;
  }
  P->DupB = Vector(2 * N);

  for (size_t LI = 0, E = Body.numLayers(); LI < E; ++LI) {
    const Layer &L = Body.layer(LI);
    if (L.isIdentity())
      continue;
    ResidualStep Step;
    if (auto Affine = L.affineForm()) {
      // Block-diagonal [[I, 0], [0, W]] over [x; z], bias [0; b].
      size_t Kin = L.inputSize(), Kout = L.outputSize();
      Step.IsAffine = true;
      Step.W = Matrix(N + Kout, N + Kin);
      for (size_t I = 0; I < N; ++I)
        Step.W(I, I) = 1.0;
      for (size_t R = 0; R < Kout; ++R)
        for (size_t C = 0; C < Kin; ++C)
          Step.W(N + R, N + C) = (*Affine->W)(R, C);
      Step.B = Vector(N + Kout);
      for (size_t R = 0; R < Kout; ++R)
        Step.B[N + R] = (*Affine->B)[R];
      Step.Act = ActivationKind::Relu;
      Step.Begin = Step.End = 0;
    } else {
      auto Act = L.activationKind();
      assert(Act && "residual body layer is neither affine nor activation");
      Step.IsAffine = false;
      Step.Act = *Act;
      Step.Begin = N;
      Step.End = N + L.outputSize();
    }
    P->Steps.push_back(std::move(Step));
  }

  // Sum = [I I]: y = x + z.
  P->SumW = Matrix(N, 2 * N);
  for (size_t I = 0; I < N; ++I) {
    P->SumW(I, I) = 1.0;
    P->SumW(I, N + I) = 1.0;
  }
  P->SumB = Vector(N);

  Plan = std::move(P);
  return *Plan;
}
