//===- RandomNetwork.h - Seeded random networks and properties ---*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's test-case generator: seeded random networks over the full
/// layer zoo (Dense, Conv2D, max/average pooling, ReLU/sigmoid/tanh
/// activations, identity Flatten, residual blocks) of configurable shape,
/// plus random robustness properties over them. A generated network is fully described by a small
/// NetworkSpec (architecture numbers + weight seed), so a failing fuzz case
/// can be persisted as a few integers and rebuilt bit-identically later —
/// the foundation of the replayable repro corpus.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_FUZZ_RANDOMNETWORK_H
#define CHARON_FUZZ_RANDOMNETWORK_H

#include "core/Property.h"
#include "nn/Network.h"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace charon {
class Rng;

/// Shape ranges the generator draws from. Defaults keep networks small
/// enough that every abstract domain (including powersets and polyhedra)
/// analyzes a case in milliseconds, which is what lets a 60-second campaign
/// cover thousands of oracle checks.
struct GeneratorConfig {
  size_t MinInputs = 2;
  size_t MaxInputs = 6;
  size_t MinOutputs = 2;
  size_t MaxOutputs = 5;
  int MinHiddenLayers = 1;
  int MaxHiddenLayers = 3;
  size_t MinWidth = 2;
  size_t MaxWidth = 8;
  /// Probability of generating a convolutional (Conv2D [+ MaxPool2D])
  /// architecture instead of an MLP.
  double ConvProbability = 0.25;
  /// Probability that a convolutional case includes a MaxPool2D layer.
  double PoolProbability = 0.5;
  /// Probability that hidden activations are smooth (sigmoid or tanh, an
  /// even split) instead of ReLU — exercises the relaxation transformers.
  double SmoothActProbability = 0.3;
  /// Probability that a pooled conv case uses AveragePool2D instead of
  /// MaxPool2D.
  double AvgPoolProbability = 0.5;
  /// Probability that a conv case inserts an (identity) Flatten layer
  /// before the dense head.
  double FlattenProbability = 0.25;
  /// Probability that an MLP case wraps a square hidden block in a
  /// residual (identity-skip) layer.
  double ResidualProbability = 0.25;
  /// Half-width range of generated property regions (before clipping).
  double MinHalfWidth = 0.01;
  double MaxHalfWidth = 0.4;
  /// Probability that a property targets the class the network assigns to
  /// the region center (likely-robust case) rather than a uniformly random
  /// class (likely-falsifiable case). Both kinds exercise different oracle
  /// paths, so the generator mixes them.
  double CenterClassProbability = 0.5;
};

/// Architecture family of a generated network.
enum class FuzzArch { Mlp, Conv };

/// Complete, serializable description of a generated network: rebuild with
/// buildNetwork() and you get bit-identical weights (He init replayed from
/// WeightSeed through the deterministic splitmix Rng).
struct NetworkSpec {
  FuzzArch Arch = FuzzArch::Mlp;
  uint64_t WeightSeed = 0;

  // MLP shape (Arch == Mlp).
  size_t Inputs = 2;
  size_t Outputs = 2;
  std::vector<size_t> Hidden;

  // Conv shape (Arch == Conv): input tensor Channels x Height x Width,
  // one conv layer (+ReLU), optional 2x2/stride-2 max pool, dense head.
  int Channels = 1;
  int Height = 4;
  int Width = 4;
  int ConvChannels = 2;
  int Kernel = 3;
  int Stride = 1;
  int Pad = 1;
  bool WithPool = false;

  // Layer-zoo extension (defaults replay the pre-zoo generator exactly;
  // the fields serialize as an optional trailer so the existing repro
  // corpus parses unchanged).
  ActivationKind Act = ActivationKind::Relu; ///< hidden activation
  bool WithResidual = false; ///< Mlp: insert a residual Dense+Act block
  bool AvgPool = false;      ///< Conv: AveragePool2D instead of MaxPool2D
  bool WithFlatten = false;  ///< Conv: identity Flatten before the head

  bool operator==(const NetworkSpec &O) const;
};

/// Draws a random architecture from \p Config.
NetworkSpec generateNetworkSpec(Rng &R, const GeneratorConfig &Config);

/// Deterministically materializes \p Spec (same spec, same weights).
Network buildNetwork(const NetworkSpec &Spec);

/// Input dimensionality of the network \p Spec describes.
size_t specInputSize(const NetworkSpec &Spec);

/// Output dimensionality of the network \p Spec describes.
size_t specOutputSize(const NetworkSpec &Spec);

/// Draws a random robustness property for \p Net: an L-infinity ball around
/// a random center (clipped to [0, 1]) with the target class chosen per
/// GeneratorConfig::CenterClassProbability.
RobustnessProperty generateProperty(Rng &R, const Network &Net,
                                    const GeneratorConfig &Config);

/// Single-line serialization of \p Spec (used inside repro files):
///   mlp <seed> <in> <out> <num-hidden> <h...> [zoo <act> <res>]
///   conv <seed> <C> <H> <W> <outC> <k> <stride> <pad> <pool> <out>
///     [zoo <act> <avg> <flat>]
/// The "zoo" trailer is optional on input, so pre-zoo corpus files parse
/// to specs with the default (ReLU, no residual/avg-pool/flatten) fields.
void writeNetworkSpec(const NetworkSpec &Spec, std::ostream &Os);

/// Parses writeNetworkSpec() output; false on malformed input.
bool readNetworkSpec(std::istream &Is, NetworkSpec &Spec);

} // namespace charon

#endif // CHARON_FUZZ_RANDOMNETWORK_H
