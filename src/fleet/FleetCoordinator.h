//===- FleetCoordinator.h - Multi-process sharded proof search ----*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scales one verification job across worker *processes*: the coordinator
/// dispatches SearchCheckpoint shards (contiguous, DFS-ordered runs of an
/// open frontier) to a fleet of fork/exec'd charon_worker children over
/// the JSONL control channel (FleetProtocol.h), steals work from loaded
/// workers for idle ones, and survives worker crashes by requeueing the
/// dead worker's outstanding shard.
///
/// Why the verdict stays bit-identical to the serial Verifier::verify:
///
///  1. A job enters the fleet as a single root shard — the whole search is
///     one unit of work, so "dispatch a whole job" and "dispatch a subtree
///     shard" are the same operation.
///  2. Work-stealing always moves *checkpoint suffixes*: a yielded worker
///     checkpoints its frontier (node expansions commit atomically, so an
///     aborted in-flight node stays open and is re-expanded identically),
///     and the coordinator re-splits that frontier into contiguous DFS
///     runs. Since no open node is an ancestor of another, every
///     descendant of shard i precedes every descendant of shard i+1 in
///     DFS order — shards are totally DFS-ordered at all times.
///  3. Node expansion is a pure function of (network, policy, config, node
///     path, region, warm witness) with path-derived RNG seeds, so every
///     shard computes exactly what the serial run would compute for those
///     subtrees, regardless of which worker runs it or how often a crash
///     forces a replay.
///  4. Verdict selection mirrors the engine's DFS-earliest confirmation
///     rule at the shard level: a falsified shard only wins once every
///     DFS-earlier shard has finished without falsifying (DFS-later
///     shards are cancelled — they can only find DFS-later witnesses);
///     within a shard the engine already returns the DFS-earliest
///     falsification. Verified requires all shards verified. A
///     falsification always beats a Timeout, matching the serial engine's
///     interrupted-run rule.
///
/// Stats are the one deliberate difference on falsified runs: DFS-later
/// shards run speculatively and their (cancelled) work is still counted,
/// so counters can exceed the serial run's. Verdict, counterexample, and
/// objective are bit-identical; on clean Verified runs the summed
/// counters match the serial run too (same node set, modulo Seconds).
///
/// Jobs whose config carries process-local hooks (trace sink, complete-
/// fallback callback, CEGAR) cannot cross the wire; they run inline in
/// the coordinator — slower, never wrong — and count as InlineFallbacks.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_FLEET_FLEETCOORDINATOR_H
#define CHARON_FLEET_FLEETCOORDINATOR_H

#include "core/Policy.h"
#include "core/Verifier.h"
#include "fleet/FleetProtocol.h"
#include "fleet/WorkerProcess.h"
#include "search/Checkpoint.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace charon {
class Network;

/// Fleet tuning knobs.
struct FleetConfig {
  /// Path of the charon_worker binary (execvp semantics: a bare name
  /// searches PATH). Empty disables process dispatch — every job runs
  /// inline.
  std::string WorkerBinary;
  /// Worker processes to keep alive. 0 behaves like an empty WorkerBinary.
  unsigned Workers = 2;
  /// Policy file forwarded to workers (--policy). Must match the policy
  /// the coordinator was built with, or worker expansions would diverge
  /// from serial runs; empty means both sides use the built-in default.
  std::string PolicyPath;
  /// A worker must have run its shard this long before it can be yielded
  /// for stealing; failed steals back off by 4x this.
  double StealAfterSeconds = 0.05;
  /// Disable to measure pure static sharding.
  bool EnableStealing = true;
  /// Grace given to workers between "quit" and SIGKILL at shutdown.
  double ShutdownGraceSeconds = 2.0;
  /// Test hook: once total dispatches exceed this count, SIGKILL the
  /// worker that received the latest dispatch (exactly once). Negative
  /// disables. Exercises the crash-requeue path deterministically.
  int ChaosKillAfterDispatches = -1;
};

/// Cumulative coordinator counters (monotone over the fleet's lifetime).
struct FleetStats {
  long Jobs = 0;             ///< verify() calls accepted
  long ShardsDispatched = 0; ///< run commands sent (requeues included)
  long Steals = 0;           ///< shards migrated off a yielded worker
  long WorkerRestarts = 0;   ///< dead workers detected and replaced
  long InlineFallbacks = 0;  ///< jobs run in-process (non-transportable
                             ///< config or no workers available)
};

/// Per-job accounting, filled when verify() is given a report pointer.
struct FleetJobReport {
  long Shards = 0;   ///< dispatches for this job
  long Steals = 0;   ///< successful steals while this job ran
  long Restarts = 0; ///< worker deaths while this job's shards ran
  bool Inline = false;
  std::vector<long> PerWorkerExpanded; ///< nodes expanded, by worker slot
};

/// The fleet: owns the worker processes and a background event loop.
/// Thread-safe; concurrent verify() calls share the worker pool (the
/// service layer funnels whole jobs and their shards through one fleet).
class FleetCoordinator {
public:
  FleetCoordinator(VerificationPolicy Policy, FleetConfig Config);
  ~FleetCoordinator();

  FleetCoordinator(const FleetCoordinator &) = delete;
  FleetCoordinator &operator=(const FleetCoordinator &) = delete;

  /// Decides \p Prop on \p Net across the fleet. Blocking; bit-identical
  /// verdict/counterexample/objective to Verifier(Net, policy,
  /// Config).verify(Prop, Resume). Config.CancelRequested is polled by
  /// the coordinator and fanned out to workers as shard cancels.
  VerifyResult verify(const Network &Net, const RobustnessProperty &Prop,
                      const VerifierConfig &Config,
                      const SearchCheckpoint *Resume = nullptr,
                      FleetJobReport *Report = nullptr);

  FleetStats stats() const;
  unsigned workers() const { return Config.Workers; }

private:
  struct Shard;
  struct JobRec;
  struct Slot;

  void loop();
  void wake();
  double now() const;

  // Everything below runs on the loop thread with Mutex held.
  void handleWorkerLines(size_t SlotIdx);
  void handleEvent(size_t SlotIdx, const FleetEvent &Ev);
  void handleWorkerDeath(size_t SlotIdx);
  void dispatchShards();
  void maybeSteal();
  void pollJobStops();
  void resolveAsRemnant(JobRec &J, Shard &&S);
  void pruneLaterShards(JobRec &J);
  void requeueFront(Shard &&S);
  void maybeFinish(JobRec &J);
  bool runShardInline(Shard &&S);
  JobRec *findJob(uint64_t Id);

  VerificationPolicy Policy;
  FleetConfig Config;

  mutable std::mutex Mutex;
  std::condition_variable JobCv;
  std::vector<std::unique_ptr<Slot>> Slots;
  std::deque<Shard> Queue; ///< shards awaiting a worker
  std::vector<std::unique_ptr<JobRec>> Jobs;
  FleetStats Counters;
  uint64_t NextJobId = 1;
  uint64_t NextShardId = 1;
  bool ChaosFired = false;
  long TotalDispatches = 0;

  std::chrono::steady_clock::time_point Start;
  int WakePipe[2] = {-1, -1};
  std::thread LoopThread;
  bool Stopping = false;
};

} // namespace charon

#endif // CHARON_FLEET_FLEETCOORDINATOR_H
