//===- bench_parallel_scaling.cpp - Sec. 6: parallelization of Analyze --------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// The paper parallelizes independent calls to the abstract interpreter
// across threads ("utilizes as many threads as the host machine can
// provide", Sec. 6) and reports CPU time precisely because of this. This
// harness measures the wall-clock speedup of verifyParallel() over the
// sequential verifier on refinement-heavy properties, across thread
// counts, and emits the same "charon-bench-scaling/1" JSON document as
// bench_fleet_scaling (mode "threads" here, "processes" there) so thread
// and process scaling plot on one chart.
//
//   --scaling-out=PATH   output JSON path (default BENCH_parallel_scaling.json)
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "search/Trace.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace charon;
using namespace charon::bench;

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_parallel_scaling.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--scaling-out=", 14) == 0)
      OutPath = argv[I] + 14;
    else {
      std::fprintf(stderr, "usage: %s [--scaling-out=P]\n", argv[0]);
      return 2;
    }
  }

  HarnessConfig Config = defaultHarnessConfig();
  VerificationPolicy Policy = loadOrDefaultPolicy(Config);

  std::printf("== Parallelization of independent Analyze calls (Sec. 6) ==\n");
  std::printf("(budget %.1fs/property, %u hardware threads)\n\n",
              Config.BudgetSeconds, std::thread::hardware_concurrency());

  // Pick refinement-heavy properties: verified sequentially, with many
  // splits (those are the ones with parallelizable subproblem trees). The
  // selection pass doubles as the serial baseline for the JSON document.
  std::vector<BenchmarkSuite> Suites = buildFcSuites(Config);
  struct HardProp {
    const BenchmarkSuite *Suite;
    const RobustnessProperty *Prop;
    double SeqSeconds;
    long SeqNodes;
  };
  std::vector<HardProp> HardProps;
  for (const BenchmarkSuite &Suite : Suites) {
    for (const RobustnessProperty &Prop : Suite.Properties) {
      VerifierConfig VC;
      VC.TimeLimitSeconds = Config.BudgetSeconds;
      Verifier V(Suite.Net, Policy, VC);
      VerifyResult R = V.verify(Prop);
      if (R.Result == Outcome::Verified && R.Stats.Splits >= 16)
        HardProps.push_back(
            {&Suite, &Prop, R.Stats.Seconds, R.Stats.NodesExpanded});
      if (HardProps.size() >= 6)
        break;
    }
    if (HardProps.size() >= 6)
      break;
  }
  if (HardProps.empty()) {
    std::printf("no refinement-heavy verified properties under the current "
                "budget;\nraise CHARON_BENCH_BUDGET to exercise this bench\n");
    return 0;
  }
  double SerialSeconds = 0.0;
  long SerialNodes = 0;
  std::vector<std::string> Names;
  for (const HardProp &H : HardProps) {
    SerialSeconds += H.SeqSeconds;
    SerialNodes += H.SeqNodes;
    Names.push_back(H.Prop->Name); // already qualified "<suite>/p<N>"
  }
  std::printf("%zu refinement-heavy properties selected (serial %.3f s, "
              "%ld nodes)\n\n",
              HardProps.size(), SerialSeconds, SerialNodes);

  std::printf("%-10s %-14s %-8s %-12s %s\n", "threads", "wall-seconds",
              "speedup", "nodes/sec", "trace-events");
  std::vector<ScalingPoint> Points;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    Stopwatch Watch;
    int Verified = 0;
    VerifyStats Aggregate;
    // Count every node expansion through the trace sink (the structured
    // observability channel) and cross-check against NodesExpanded — the
    // engine must emit exactly one event per expansion, from any thread.
    // Attributing committed expansions to the emitting thread gives the
    // same work-distribution picture the fleet bench reports per worker.
    std::mutex CountMutex;
    std::map<std::thread::id, long> CommittedByThread;
    long SplitEvents = 0, AbortedEvents = 0, OtherEvents = 0;
    TraceSink Counting = [&](const TraceEvent &Event) {
      std::lock_guard<std::mutex> Lock(CountMutex);
      if (!std::strcmp(Event.Outcome, "split"))
        ++SplitEvents;
      else if (!std::strcmp(Event.Outcome, "aborted"))
        ++AbortedEvents;
      else
        ++OtherEvents;
      if (std::strcmp(Event.Outcome, "aborted"))
        ++CommittedByThread[std::this_thread::get_id()];
    };
    for (const HardProp &H : HardProps) {
      VerifierConfig VC;
      VC.TimeLimitSeconds = 4.0 * Config.BudgetSeconds;
      VC.Trace = Counting;
      Verifier V(H.Suite->Net, Policy, VC);
      VerifyResult R = V.verifyParallel(*H.Prop, Pool);
      if (R.Result == Outcome::Verified)
        ++Verified;
      Aggregate += R.Stats;
    }
    double Elapsed = Watch.seconds();
    // Aborted events are emitted but not counted as expansions (their node
    // stays open), so the committed-expansion identity excludes them.
    long Committed = SplitEvents + OtherEvents;
    std::printf("%-10u %-14.3f %-8.2f %-12.0f %ld (%ld splits)%s   "
                "(%d/%zu verified)\n",
                Threads, Elapsed,
                Elapsed > 0.0 ? SerialSeconds / Elapsed : 1.0,
                Elapsed > 0.0 ? Aggregate.NodesExpanded / Elapsed : 0.0,
                Committed + AbortedEvents, SplitEvents,
                Committed == Aggregate.NodesExpanded ? "" : " MISMATCH",
                Verified, HardProps.size());

    ScalingPoint P;
    P.Workers = static_cast<int>(Threads);
    P.WallSeconds = Elapsed;
    P.Speedup = Elapsed > 0.0 ? SerialSeconds / Elapsed : 1.0;
    P.NodesExpanded = Aggregate.NodesExpanded;
    P.Steals = 0; // thread mode shares one frontier; nothing migrates
    P.WorkerRestarts = 0;
    for (const auto &Entry : CommittedByThread)
      P.PerWorkerExpanded.push_back(Entry.second);
    // Verified at every thread count and the per-event identity held.
    P.VerdictsIdentical = Verified == static_cast<int>(HardProps.size()) &&
                          Committed == Aggregate.NodesExpanded;
    Points.push_back(std::move(P));
  }
  if (!writeScalingJsonFile(OutPath, "threads", Names, SerialSeconds,
                            SerialNodes, Points)) {
    std::fprintf(stderr, "failed to write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu points)\n", OutPath.c_str(), Points.size());
  std::printf("\nVerdicts must not depend on the thread count; wall-clock "
              "time should\nshrink with threads on refinement-heavy "
              "instances (flat scaling is\nexpected on single-core "
              "hosts).\n");
  return 0;
}
