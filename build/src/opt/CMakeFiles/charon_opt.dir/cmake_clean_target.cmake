file(REMOVE_RECURSE
  "libcharon_opt.a"
)
