file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_complete.dir/bench_fig14_complete.cpp.o"
  "CMakeFiles/bench_fig14_complete.dir/bench_fig14_complete.cpp.o.d"
  "bench_fig14_complete"
  "bench_fig14_complete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_complete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
