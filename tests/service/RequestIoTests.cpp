//===- RequestIoTests.cpp - JSONL request/response protocol tests -------------===//

#include "service/RequestIo.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace charon;

namespace {

ServiceRequest sampleBallRequest() {
  ServiceRequest Req;
  Req.Network = "networks/acas.net";
  Req.Name = "p3";
  Req.Label = 2;
  Req.Epsilon = 0.05;
  Req.Center = Vector{0.5, 0.25, 0.75, 0.5, 0.5};
  Req.BudgetSeconds = 7.5;
  Req.Delta = 1e-7;
  Req.Priority = 3;
  return Req;
}

} // namespace

TEST(RequestIoTest, ParsesBallRequest) {
  auto Req = parseRequestLine(
      R"({"network":"acas.net","name":"p1","label":1,"epsilon":0.1,)"
      R"("center":[0.5,0.5],"budget":3,"delta":1e-5,"priority":2})");
  ASSERT_TRUE(Req.has_value());
  EXPECT_EQ(Req->Network, "acas.net");
  EXPECT_EQ(Req->Name, "p1");
  EXPECT_EQ(Req->Label, 1u);
  EXPECT_DOUBLE_EQ(Req->Epsilon, 0.1);
  ASSERT_EQ(Req->Center.size(), 2u);
  EXPECT_DOUBLE_EQ(Req->BudgetSeconds, 3.0);
  EXPECT_DOUBLE_EQ(Req->Delta, 1e-5);
  EXPECT_EQ(Req->Priority, 2);
}

TEST(RequestIoTest, ParsesBoxRequestAndBuildsProperty) {
  auto Req = parseRequestLine(
      R"({"network":"n.net","label":0,"lower":[0,0.25],"upper":[1,0.75]})");
  ASSERT_TRUE(Req.has_value());
  auto Prop = requestProperty(*Req);
  ASSERT_TRUE(Prop.has_value());
  EXPECT_EQ(Prop->Region.dim(), 2u);
  EXPECT_DOUBLE_EQ(Prop->Region.lower()[1], 0.25);
  EXPECT_DOUBLE_EQ(Prop->Region.upper()[1], 0.75);
  EXPECT_EQ(Prop->TargetClass, 0u);
}

TEST(RequestIoTest, BallPropertyClipsToUnitBox) {
  ServiceRequest Req;
  Req.Network = "n.net";
  Req.Label = 0;
  Req.Epsilon = 0.3;
  Req.Center = Vector{0.1, 0.9};
  auto Prop = requestProperty(Req);
  ASSERT_TRUE(Prop.has_value());
  EXPECT_DOUBLE_EQ(Prop->Region.lower()[0], 0.0);
  EXPECT_DOUBLE_EQ(Prop->Region.upper()[0], 0.4);
  EXPECT_DOUBLE_EQ(Prop->Region.lower()[1], 0.6);
  EXPECT_DOUBLE_EQ(Prop->Region.upper()[1], 1.0);
}

TEST(RequestIoTest, RequestRoundTripsThroughFormat) {
  ServiceRequest Req = sampleBallRequest();
  auto Parsed = parseRequestLine(formatRequestLine(Req));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->Network, Req.Network);
  EXPECT_EQ(Parsed->Name, Req.Name);
  EXPECT_EQ(Parsed->Label, Req.Label);
  EXPECT_EQ(Parsed->Epsilon, Req.Epsilon);
  ASSERT_EQ(Parsed->Center.size(), Req.Center.size());
  for (size_t I = 0; I < Req.Center.size(); ++I)
    EXPECT_EQ(Parsed->Center[I], Req.Center[I]);
  EXPECT_EQ(Parsed->BudgetSeconds, Req.BudgetSeconds);
  EXPECT_EQ(Parsed->Delta, Req.Delta);
  EXPECT_EQ(Parsed->Priority, Req.Priority);
}

TEST(RequestIoTest, BoxRequestRoundTrips) {
  ServiceRequest Req;
  Req.Network = "a b\\c.net"; // exercises string escaping
  Req.Label = 4;
  Req.Lower = Vector{0.0, 0.125};
  Req.Upper = Vector{1.0, 0.875};
  auto Parsed = parseRequestLine(formatRequestLine(Req));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->Network, Req.Network);
  ASSERT_EQ(Parsed->Lower.size(), 2u);
  EXPECT_EQ(Parsed->Lower[1], 0.125);
  EXPECT_EQ(Parsed->Upper[1], 0.875);
}

TEST(RequestIoTest, RejectsMalformedLines) {
  std::string Error;
  // Not an object.
  EXPECT_FALSE(parseRequestLine("[1,2]", &Error).has_value());
  // Missing network.
  EXPECT_FALSE(parseRequestLine(
                   R"({"label":1,"epsilon":0.1,"center":[0.5]})")
                   .has_value());
  // Unknown key fails loudly.
  EXPECT_FALSE(parseRequestLine(
                   R"({"network":"n","labell":1,"epsilon":0.1,"center":[0]})")
                   .has_value());
  // Both region forms at once.
  EXPECT_FALSE(
      parseRequestLine(
          R"({"network":"n","epsilon":0.1,"center":[0],"lower":[0],"upper":[1]})")
          .has_value());
  // Neither region form.
  EXPECT_FALSE(parseRequestLine(R"({"network":"n","label":1})").has_value());
  // Mismatched box bounds.
  EXPECT_FALSE(
      parseRequestLine(R"({"network":"n","lower":[0,0],"upper":[1]})")
          .has_value());
  // Trailing garbage.
  EXPECT_FALSE(
      parseRequestLine(R"({"network":"n","label":0,"lower":[0],"upper":[1]}x)")
          .has_value());
  // Duplicate key.
  EXPECT_FALSE(
      parseRequestLine(
          R"({"network":"n","network":"m","lower":[0],"upper":[1]})")
          .has_value());
}

TEST(RequestIoTest, ResponseRoundTripsBitExactly) {
  ServiceResponse Resp;
  Resp.Name = "p7";
  Resp.Network = "networks/mnist.net";
  Resp.Result = Outcome::Falsified;
  Resp.CacheHit = true;
  Resp.Cancelled = false;
  Resp.Seconds = 0.123456789012345678;
  Resp.Counterexample = Vector{0.1 + 0.2, 1.0 / 3.0, 1e-300};

  auto Parsed = parseResponseLine(formatResponseLine(Resp));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->Name, Resp.Name);
  EXPECT_EQ(Parsed->Network, Resp.Network);
  EXPECT_EQ(Parsed->Result, Resp.Result);
  EXPECT_EQ(Parsed->CacheHit, Resp.CacheHit);
  EXPECT_EQ(Parsed->Cancelled, Resp.Cancelled);
  // %.17g guarantees exact double round-trips.
  EXPECT_EQ(Parsed->Seconds, Resp.Seconds);
  ASSERT_EQ(Parsed->Counterexample.size(), Resp.Counterexample.size());
  for (size_t I = 0; I < Resp.Counterexample.size(); ++I)
    EXPECT_EQ(Parsed->Counterexample[I], Resp.Counterexample[I]);
}

TEST(RequestIoTest, BatchSurvivesMalformedLines) {
  std::istringstream In(
      R"({"network":"a.net","label":0,"lower":[0],"upper":[1]})"
      "\n"
      "this line is garbage\n"
      "\n" // blank: skipped entirely, but still counted for numbering
      R"({"network":"b.net","label":1,"epsilon":0.1,"center":[0.5]})"
      "\n");
  std::vector<BatchLine> Lines = parseRequestBatch(In);
  ASSERT_EQ(Lines.size(), 3u);

  EXPECT_EQ(Lines[0].LineNo, 1);
  ASSERT_TRUE(Lines[0].Request.has_value());
  EXPECT_EQ(Lines[0].Request->Network, "a.net");
  EXPECT_TRUE(Lines[0].Error.empty());

  // The bad line is reported in place — with its reason and line number —
  // and parsing continues.
  EXPECT_EQ(Lines[1].LineNo, 2);
  EXPECT_FALSE(Lines[1].Request.has_value());
  EXPECT_FALSE(Lines[1].Error.empty());

  // The blank line produced no entry but the numbering still counts it.
  EXPECT_EQ(Lines[2].LineNo, 4);
  ASSERT_TRUE(Lines[2].Request.has_value());
  EXPECT_EQ(Lines[2].Request->Network, "b.net");
}

TEST(RequestIoTest, ErrorResponseRoundTrips) {
  ServiceResponse Resp;
  Resp.Error = "line 7: cannot load network \"x\\y\".net";
  auto Parsed = parseResponseLine(formatResponseLine(Resp));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->Error, Resp.Error);
}

TEST(RequestIoTest, ResponseVocabularyCoversAllOutcomes) {
  for (Outcome O :
       {Outcome::Verified, Outcome::Falsified, Outcome::Timeout}) {
    ServiceResponse Resp;
    Resp.Result = O;
    auto Parsed = parseResponseLine(formatResponseLine(Resp));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(Parsed->Result, O);
  }
  EXPECT_FALSE(parseResponseLine(
                   R"({"name":"x","network":"n","outcome":"maybe",)"
                   R"("seconds":0,"cache_hit":false,"cancelled":false,)"
                   R"("counterexample":[]})")
                   .has_value());
}
