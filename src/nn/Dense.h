//===- Dense.h - Fully connected (affine) layer -----------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fully connected layer computing y = W x + b (Sec. 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_NN_DENSE_H
#define CHARON_NN_DENSE_H

#include "nn/Layer.h"

namespace charon {
class Rng;

/// Fully connected affine layer y = W x + b.
class DenseLayer : public Layer {
public:
  /// Creates a zero-initialized layer mapping \p In to \p Out dimensions.
  DenseLayer(size_t In, size_t Out);

  /// Creates a layer with explicit parameters.
  DenseLayer(Matrix Weights, Vector Bias);

  /// He-initializes weights (scaled for a following ReLU).
  void initHe(Rng &R);

  LayerKind kind() const override { return LayerKind::Dense; }
  size_t inputSize() const override { return W.cols(); }
  size_t outputSize() const override { return W.rows(); }

  Vector forward(const Vector &Input) const override;
  Vector backward(const Vector &Input, const Vector &GradOut,
                  bool AccumulateParams) override;
  Matrix forwardBatch(const Matrix &X) const override;
  Matrix backwardBatch(const Matrix &X, const Matrix &GradOut) const override;
  void applyGradients(double LearningRate, double BatchSize) override;
  void zeroGradients() override;

  std::optional<AffineView> affineForm() const override {
    return AffineView{&W, &B};
  }

  std::unique_ptr<Layer> clone() const override;

  const Matrix &weights() const { return W; }
  const Vector &bias() const { return B; }
  Matrix &weights() { return W; }
  Vector &bias() { return B; }

private:
  Matrix W;
  Vector B;
  Matrix GradW;
  Vector GradB;
};

} // namespace charon

#endif // CHARON_NN_DENSE_H
