//===- CegarEngine.h - Abstraction-refinement verification driver -*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CEGAR outer loop around the proof-search engine: verify a merged,
/// sound over-approximation of the network (see cegar/Abstractor.h); a
/// Verified verdict transfers to the original network for free, while a
/// candidate counterexample is replayed concretely through the original
/// network with the batched execution engine. A confirmed candidate is a
/// genuine Falsified verdict; a spurious one selects the merged neurons
/// with the largest abstract-vs-concrete activation gap, splits them, and
/// retries on the refined abstraction. Each abstract round is limited to
/// half of the remaining time budget; when the round budget runs out, an
/// abstract round times out, or the network is not abstractable at all,
/// the loop falls back to a direct search on the original network with the
/// remaining time budget, so the driver is exactly as sound and
/// delta-complete as Verifier::verify.
///
/// Observability: each round emits one "cegar_round" trace event through
/// VerifierConfig::Trace (node events from the inner searches refer to the
/// current network — abstract during rounds, original during fallback) and
/// the returned stats carry CegarRounds / CegarSpuriousCexes /
/// CegarFallbacks / CegarAbstractNeurons.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_CEGAR_CEGARENGINE_H
#define CHARON_CEGAR_CEGARENGINE_H

#include "core/Policy.h"
#include "core/Property.h"
#include "core/Verifier.h"

namespace charon {
class ThreadPool;

/// Abstraction-refinement driver wrapping SearchEngine. Stateless across
/// runs, like the engine it wraps.
class CegarEngine {
public:
  CegarEngine(const Network &Net, const VerificationPolicy &Policy,
              const VerifierConfig &Config);

  /// Decides \p Prop with abstract-first search. With \p Pool null the
  /// inner searches run sequentially, otherwise on the pool; the verdict is
  /// identical either way on runs that finish within budget (the inner
  /// engine's determinism contract lifts through the loop). The abstract
  /// frontier is never checkpointed (it cannot resume a search over the
  /// original network); a Timeout checkpoint, when present, always comes
  /// from the direct fallback.
  VerifyResult run(const RobustnessProperty &Prop, ThreadPool *Pool) const;

private:
  const Network &Net;
  const VerificationPolicy &Policy;
  const VerifierConfig &Config;
};

} // namespace charon

#endif // CHARON_CEGAR_CEGARENGINE_H
