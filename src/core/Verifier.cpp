//===- Verifier.cpp - The Charon decision procedure (Algorithm 1) -------------===//

#include "core/Verifier.h"

#include "cegar/CegarEngine.h"
#include "search/SearchEngine.h"

using namespace charon;

const char *charon::toString(Outcome O) {
  switch (O) {
  case Outcome::Verified:
    return "verified";
  case Outcome::Falsified:
    return "falsified";
  case Outcome::Timeout:
    return "timeout";
  }
  return "unknown";
}

Verifier::Verifier(const Network &N, VerificationPolicy P, VerifierConfig C)
    : Net(N), Policy(std::move(P)), Config(std::move(C)) {}

VerifyResult Verifier::verify(const RobustnessProperty &Prop,
                              const SearchCheckpoint *Resume) const {
  // CEGAR runs cannot resume a checkpoint: the frontier it would describe
  // belongs to whichever network timed out, which is usually an abstract
  // net the refined loop will never rebuild. Resume implies direct search.
  if (Config.Cegar.Enabled && !Resume)
    return CegarEngine(Net, Policy, Config).run(Prop, nullptr);
  return SearchEngine(Net, Policy, Config).run(Prop, Resume, nullptr);
}

VerifyResult Verifier::verifyParallel(const RobustnessProperty &Prop,
                                      ThreadPool &Pool,
                                      const SearchCheckpoint *Resume) const {
  if (Config.Cegar.Enabled && !Resume)
    return CegarEngine(Net, Policy, Config).run(Prop, &Pool);
  return SearchEngine(Net, Policy, Config).run(Prop, Resume, &Pool);
}
