//===- ZonotopeElement.cpp - Zonotope abstract domain ------------------------===//

#include "abstract/ZonotopeElement.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace charon;

ZonotopeElement::ZonotopeElement(const Box &Region) : Center(Region.center()) {
  for (size_t I = 0, E = Region.dim(); I < E; ++I) {
    double HalfWidth = 0.5 * Region.width(I);
    if (HalfWidth == 0.0)
      continue;
    Vector G(Region.dim());
    G[I] = HalfWidth;
    Generators.push_back(std::move(G));
  }
}

ZonotopeElement::ZonotopeElement(Vector C, std::vector<Vector> Gens)
    : Center(std::move(C)), Generators(std::move(Gens)) {
#ifndef NDEBUG
  for (const Vector &G : Generators)
    assert(G.size() == Center.size() && "generator dimension mismatch");
#endif
}

std::unique_ptr<AbstractElement> ZonotopeElement::clone() const {
  return std::make_unique<ZonotopeElement>(Center, Generators);
}

double ZonotopeElement::radius(size_t I) const {
  double Sum = 0.0;
  for (const Vector &G : Generators)
    Sum += std::fabs(G[I]);
  return Sum;
}

void ZonotopeElement::applyAffine(const Matrix &W, const Vector &B) {
  assert(W.cols() == dim() && "affine shape mismatch");
  Center = matVec(W, Center);
  Center += B;
  for (Vector &G : Generators)
    G = matVec(W, G);
}

void ZonotopeElement::applyRelu() {
  size_t N = dim();
  // Precompute per-coordinate radii in one pass over the generators.
  Vector Radius(N);
  for (const Vector &G : Generators)
    for (size_t I = 0; I < N; ++I)
      Radius[I] += std::fabs(G[I]);

  std::vector<std::pair<size_t, double>> FreshGenerators;
  for (size_t I = 0; I < N; ++I) {
    double L = Center[I] - Radius[I];
    double U = Center[I] + Radius[I];
    if (L >= 0.0)
      continue; // Stable active: identity.
    if (U <= 0.0) {
      // Stable inactive: output is exactly zero.
      Center[I] = 0.0;
      for (Vector &G : Generators)
        G[I] = 0.0;
      continue;
    }
    // Crossing neuron: minimal-area relaxation. ReLU(x) lies between
    // Lambda*x and Lambda*x - Lambda*L, so y = Lambda*x + Mu + Mu*eps_new
    // with Mu = -Lambda*L/2 covers it with one fresh noise symbol.
    double Lambda = U / (U - L);
    double Mu = -Lambda * L * 0.5;
    Center[I] = Lambda * Center[I] + Mu;
    for (Vector &G : Generators)
      G[I] *= Lambda;
    FreshGenerators.emplace_back(I, Mu);
  }
  for (const auto &[I, Mu] : FreshGenerators) {
    Vector G(N);
    G[I] = Mu;
    Generators.push_back(std::move(G));
  }
}

void ZonotopeElement::applyMaxPool(const PoolSpec &Spec) {
  size_t OutDim = Spec.PoolIndices.size();
  size_t N = dim();

  Vector Radius(N);
  for (const Vector &G : Generators)
    for (size_t I = 0; I < N; ++I)
      Radius[I] += std::fabs(G[I]);

  Vector NewCenter(OutDim);
  std::vector<Vector> NewGens(Generators.size(), Vector(OutDim));
  std::vector<std::pair<size_t, double>> FreshGenerators;

  for (size_t O = 0; O < OutDim; ++O) {
    const std::vector<int> &Pool = Spec.PoolIndices[O];
    assert(!Pool.empty() && "empty pool window");
    // If one window entry dominates every other (its lower bound beats all
    // other upper bounds), max-pool is exact: copy that coordinate.
    int Dominant = -1;
    for (int Candidate : Pool) {
      double CandLo = Center[Candidate] - Radius[Candidate];
      bool Dominates = true;
      for (int Other : Pool) {
        if (Other == Candidate)
          continue;
        if (CandLo < Center[Other] + Radius[Other]) {
          Dominates = false;
          break;
        }
      }
      if (Dominates) {
        Dominant = Candidate;
        break;
      }
    }
    if (Dominant >= 0) {
      NewCenter[O] = Center[Dominant];
      for (size_t E = 0; E < Generators.size(); ++E)
        NewGens[E][O] = Generators[E][Dominant];
      continue;
    }
    // Otherwise fall back to the interval hull of the window (sound but
    // drops correlations for this output): max of lowers .. max of uppers.
    double L = Center[Pool.front()] - Radius[Pool.front()];
    double U = Center[Pool.front()] + Radius[Pool.front()];
    for (size_t I = 1; I < Pool.size(); ++I) {
      L = std::max(L, Center[Pool[I]] - Radius[Pool[I]]);
      U = std::max(U, Center[Pool[I]] + Radius[Pool[I]]);
    }
    NewCenter[O] = 0.5 * (L + U);
    FreshGenerators.emplace_back(O, 0.5 * (U - L));
  }

  Center = std::move(NewCenter);
  Generators = std::move(NewGens);
  for (const auto &[O, HalfWidth] : FreshGenerators) {
    if (HalfWidth == 0.0)
      continue;
    Vector G(OutDim);
    G[O] = HalfWidth;
    Generators.push_back(std::move(G));
  }
}

double ZonotopeElement::lowerBound(size_t I) const {
  return Center[I] - radius(I);
}

double ZonotopeElement::upperBound(size_t I) const {
  return Center[I] + radius(I);
}

double ZonotopeElement::lowerBoundDiff(size_t K, size_t J) const {
  // min over eps of (x_K - x_J) = (c_K - c_J) - sum_e |g_K - g_J|: exact for
  // the linear functional, capturing shared noise symbols.
  double Diff = Center[K] - Center[J];
  for (const Vector &G : Generators)
    Diff -= std::fabs(G[K] - G[J]);
  return Diff;
}

std::unique_ptr<AbstractElement>
ZonotopeElement::meetHalfspaceAtZero(size_t D, bool NonNegative) const {
  assert(D < dim() && "meet dimension out of range");
  // Work in noise-symbol space. The constraint (NonNegative ? x_D >= 0 :
  // x_D <= 0) becomes a . eps <= e with a_j = sgn * g_j[D], e = sgn * -c[D],
  // where sgn = -1 for x_D >= 0 and +1 for x_D <= 0.
  double Sign = NonNegative ? -1.0 : 1.0;
  size_t M = Generators.size();
  std::vector<double> A(M);
  double TotalMag = 0.0;
  for (size_t J = 0; J < M; ++J) {
    A[J] = Sign * Generators[J][D];
    TotalMag += std::fabs(A[J]);
  }
  double E = -Sign * Center[D];

  if (TotalMag <= E)
    return clone(); // Constraint already satisfied everywhere.
  if (-TotalMag > E)
    return nullptr; // Provably empty intersection.

  // Girard-style tightening: interval-propagate the constraint onto each
  // noise symbol, then renormalize symbols back into [-1, 1]. Two passes
  // sharpen the bounds noticeably at negligible cost.
  std::vector<double> LoEps(M, -1.0), HiEps(M, 1.0);
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (size_t J = 0; J < M; ++J) {
      if (A[J] == 0.0)
        continue;
      // a_J * eps_J <= e - min_{k != J} sum a_k eps_k.
      double OthersMin = 0.0;
      for (size_t K = 0; K < M; ++K) {
        if (K == J)
          continue;
        OthersMin += std::min(A[K] * LoEps[K], A[K] * HiEps[K]);
      }
      double Rhs = E - OthersMin;
      if (A[J] > 0.0)
        HiEps[J] = std::min(HiEps[J], Rhs / A[J]);
      else
        LoEps[J] = std::max(LoEps[J], Rhs / A[J]);
      if (LoEps[J] > HiEps[J])
        return nullptr; // Tightening proved emptiness.
    }
  }

  // Renormalize eps_J in [LoEps, HiEps] to Mid + Rad * eps'_J.
  Vector NewCenter = Center;
  std::vector<Vector> NewGens;
  NewGens.reserve(M);
  for (size_t J = 0; J < M; ++J) {
    double Mid = 0.5 * (LoEps[J] + HiEps[J]);
    double Rad = 0.5 * (HiEps[J] - LoEps[J]);
    if (Mid != 0.0)
      axpy(Mid, Generators[J], NewCenter);
    if (Rad == 0.0)
      continue;
    Vector G = Generators[J];
    if (Rad != 1.0)
      G *= Rad;
    NewGens.push_back(std::move(G));
  }
  return std::make_unique<ZonotopeElement>(std::move(NewCenter),
                                           std::move(NewGens));
}

void ZonotopeElement::compact(double Tol) {
  size_t N = dim();
  Vector Folded(N);
  std::vector<Vector> Kept;
  Kept.reserve(Generators.size());
  for (Vector &G : Generators) {
    double Mag = 0.0;
    for (size_t I = 0; I < N; ++I)
      Mag += std::fabs(G[I]);
    if (Mag <= Tol) {
      // Fold the small generator into an axis-aligned envelope (sound:
      // componentwise interval hull of its contribution).
      for (size_t I = 0; I < N; ++I)
        Folded[I] += std::fabs(G[I]);
    } else {
      Kept.push_back(std::move(G));
    }
  }
  Generators = std::move(Kept);
  for (size_t I = 0; I < N; ++I) {
    if (Folded[I] == 0.0)
      continue;
    Vector G(N);
    G[I] = Folded[I];
    Generators.push_back(std::move(G));
  }
}
