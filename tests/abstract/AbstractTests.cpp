//===- AbstractTests.cpp - Tests for the abstract interpretation library -----===//

#include "abstract/Analyzer.h"
#include "abstract/IntervalElement.h"
#include "abstract/PowersetElement.h"
#include "abstract/SymbolicIntervalElement.h"
#include "abstract/ZonotopeElement.h"
#include "nn/Builder.h"
#include "nn/Dense.h"
#include "nn/MaxPool2D.h"
#include "nn/Relu.h"
#include "support/Random.h"

#include "TestNetworks.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace charon;

namespace {



} // namespace

//===----------------------------------------------------------------------===//
// IntervalElement transformers
//===----------------------------------------------------------------------===//

TEST(IntervalTest, AffineHandChecked) {
  IntervalElement E(Box(Vector{0.0, -1.0}, Vector{1.0, 1.0}));
  E.applyAffine(Matrix{{2.0, -1.0}}, Vector{0.5});
  // 2*[0,1] - 1*[-1,1] + 0.5 = [-0.5, 3.5].
  EXPECT_DOUBLE_EQ(E.lowerBound(0), -0.5);
  EXPECT_DOUBLE_EQ(E.upperBound(0), 3.5);
}

TEST(IntervalTest, ReluClamps) {
  IntervalElement E(Box(Vector{-2.0, 1.0, -3.0}, Vector{-1.0, 2.0, 3.0}));
  E.applyRelu();
  EXPECT_DOUBLE_EQ(E.lowerBound(0), 0.0);
  EXPECT_DOUBLE_EQ(E.upperBound(0), 0.0);
  EXPECT_DOUBLE_EQ(E.lowerBound(1), 1.0);
  EXPECT_DOUBLE_EQ(E.upperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(E.lowerBound(2), 0.0);
  EXPECT_DOUBLE_EQ(E.upperBound(2), 3.0);
}

TEST(IntervalTest, MaxPool) {
  IntervalElement E(Box(Vector{0.0, 2.0, -1.0, 1.0}, Vector{1.0, 3.0, 0.0, 5.0}));
  PoolSpec Spec;
  Spec.PoolIndices = {{0, 1}, {2, 3}};
  E.applyMaxPool(Spec);
  EXPECT_DOUBLE_EQ(E.lowerBound(0), 2.0);
  EXPECT_DOUBLE_EQ(E.upperBound(0), 3.0);
  EXPECT_DOUBLE_EQ(E.lowerBound(1), 1.0);
  EXPECT_DOUBLE_EQ(E.upperBound(1), 5.0);
}

TEST(IntervalTest, MeetHalfspace) {
  IntervalElement E(Box(Vector{-1.0}, Vector{2.0}));
  auto Pos = E.meetHalfspaceAtZero(0, true);
  ASSERT_TRUE(Pos);
  EXPECT_DOUBLE_EQ(Pos->lowerBound(0), 0.0);
  EXPECT_DOUBLE_EQ(Pos->upperBound(0), 2.0);
  auto Neg = E.meetHalfspaceAtZero(0, false);
  ASSERT_TRUE(Neg);
  EXPECT_DOUBLE_EQ(Neg->upperBound(0), 0.0);

  IntervalElement AllPos(Box(Vector{1.0}, Vector{2.0}));
  EXPECT_EQ(AllPos.meetHalfspaceAtZero(0, false), nullptr);
}

//===----------------------------------------------------------------------===//
// ZonotopeElement transformers
//===----------------------------------------------------------------------===//

TEST(ZonotopeTest, BoxAbstractionIsExact) {
  Box Region(Vector{-1.0, 2.0}, Vector{1.0, 4.0});
  ZonotopeElement Z(Region);
  EXPECT_DOUBLE_EQ(Z.lowerBound(0), -1.0);
  EXPECT_DOUBLE_EQ(Z.upperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Z.lowerBound(1), 2.0);
  EXPECT_DOUBLE_EQ(Z.upperBound(1), 4.0);
}

TEST(ZonotopeTest, AffineIsExactOnCorrelations) {
  // y0 = x0 + x1, y1 = x0 - x1 over [-1,1]^2: a box loses that
  // y0 + y1 = 2 x0, the zonotope keeps it (diff bound is exact).
  ZonotopeElement Z(Box::uniform(2, -1.0, 1.0));
  Z.applyAffine(Matrix{{1.0, 1.0}, {1.0, -1.0}}, Vector{0.0, 0.0});
  // y0 - y1 = 2 x1 in [-2, 2]; exact via shared noise symbols.
  EXPECT_DOUBLE_EQ(Z.lowerBoundDiff(0, 1), -2.0);
  // A box would give lower(y0) - upper(y1) = -2 - 2 = -4.
  IntervalElement I(Box::uniform(2, -1.0, 1.0));
  I.applyAffine(Matrix{{1.0, 1.0}, {1.0, -1.0}}, Vector{0.0, 0.0});
  EXPECT_DOUBLE_EQ(I.lowerBoundDiff(0, 1), -4.0);
}

TEST(ZonotopeTest, ReluStableCases) {
  ZonotopeElement Z(Box(Vector{1.0, -4.0}, Vector{3.0, -2.0}));
  Z.applyRelu();
  EXPECT_DOUBLE_EQ(Z.lowerBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Z.upperBound(0), 3.0);
  EXPECT_DOUBLE_EQ(Z.lowerBound(1), 0.0);
  EXPECT_DOUBLE_EQ(Z.upperBound(1), 0.0);
}

TEST(ZonotopeTest, ReluCrossingIsSoundAndBounded) {
  // Crossing neuron in [-1, 3]: after ReLU the true range is [0, 3]; the
  // minimal-area relaxation must cover it without exploding.
  ZonotopeElement Z(Box(Vector{-1.0}, Vector{3.0}));
  size_t GensBefore = Z.numGenerators();
  Z.applyRelu();
  EXPECT_EQ(Z.numGenerators(), GensBefore + 1); // one fresh symbol
  EXPECT_LE(Z.lowerBound(0), 0.0);
  EXPECT_GE(Z.upperBound(0), 3.0);
  // Minimal-area: the lower bound is -Lambda*L/... at most the relaxation
  // sag |l|*u/(u-l) = 0.75 below zero.
  EXPECT_GE(Z.lowerBound(0), -0.76);
}

TEST(ZonotopeTest, MaxPoolExactWhenDominant) {
  // Window {x0, x1} with x0 in [5,6], x1 in [0,1]: x0 dominates, pooling is
  // exact and keeps correlations.
  ZonotopeElement Z(Box(Vector{5.0, 0.0}, Vector{6.0, 1.0}));
  PoolSpec Spec;
  Spec.PoolIndices = {{0, 1}};
  Z.applyMaxPool(Spec);
  EXPECT_DOUBLE_EQ(Z.lowerBound(0), 5.0);
  EXPECT_DOUBLE_EQ(Z.upperBound(0), 6.0);
}

TEST(ZonotopeTest, MaxPoolFallbackIsSound) {
  ZonotopeElement Z(Box(Vector{0.0, 0.5}, Vector{2.0, 1.5}));
  PoolSpec Spec;
  Spec.PoolIndices = {{0, 1}};
  Z.applyMaxPool(Spec);
  // True range of max is [0.5, 2].
  EXPECT_LE(Z.lowerBound(0), 0.5);
  EXPECT_GE(Z.upperBound(0), 2.0);
}

TEST(ZonotopeTest, MeetHalfspaceTightensBounds) {
  ZonotopeElement Z(Box(Vector{-2.0}, Vector{2.0}));
  auto Pos = Z.meetHalfspaceAtZero(0, true);
  ASSERT_TRUE(Pos);
  EXPECT_GE(Pos->lowerBound(0), -1e-9);
  EXPECT_NEAR(Pos->upperBound(0), 2.0, 1e-9);
  auto Neg = Z.meetHalfspaceAtZero(0, false);
  ASSERT_TRUE(Neg);
  EXPECT_NEAR(Neg->lowerBound(0), -2.0, 1e-9);
  EXPECT_LE(Neg->upperBound(0), 1e-9);
}

TEST(ZonotopeTest, MeetHalfspaceDetectsEmptiness) {
  ZonotopeElement Z(Box(Vector{1.0}, Vector{2.0}));
  EXPECT_EQ(Z.meetHalfspaceAtZero(0, false), nullptr);
  ZonotopeElement N(Box(Vector{-2.0}, Vector{-1.0}));
  EXPECT_EQ(N.meetHalfspaceAtZero(0, true), nullptr);
}

TEST(ZonotopeTest, MeetHalfspaceNoOpWhenImplied) {
  ZonotopeElement Z(Box(Vector{1.0}, Vector{2.0}));
  auto Pos = Z.meetHalfspaceAtZero(0, true);
  ASSERT_TRUE(Pos);
  EXPECT_DOUBLE_EQ(Pos->lowerBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Pos->upperBound(0), 2.0);
}

TEST(ZonotopeTest, MeetHalfspaceSoundUnderSampling) {
  // gamma(meet(Z, x0 >= 0)) must contain every sampled point of Z with
  // x0 >= 0. Work in a rotated zonotope so the meet is nontrivial.
  ZonotopeElement Z(Box::uniform(2, -1.0, 1.0));
  Z.applyAffine(Matrix{{1.0, 0.5}, {0.3, 1.0}}, Vector{0.1, -0.2});
  auto Met = Z.meetHalfspaceAtZero(0, true);
  ASSERT_TRUE(Met);
  Rng R(31);
  Box Orig = Box::uniform(2, -1.0, 1.0);
  for (int I = 0; I < 500; ++I) {
    Vector E = Orig.sample(R);
    Vector P{0.1 + E[0] + 0.5 * E[1], -0.2 + 0.3 * E[0] + E[1]};
    if (P[0] < 0.0)
      continue;
    EXPECT_GE(P[0], Met->lowerBound(0) - 1e-9);
    EXPECT_LE(P[0], Met->upperBound(0) + 1e-9);
    EXPECT_GE(P[1], Met->lowerBound(1) - 1e-9);
    EXPECT_LE(P[1], Met->upperBound(1) + 1e-9);
  }
}

TEST(ZonotopeTest, CompactPreservesBounds) {
  Rng R(33);
  ZonotopeElement Z(Box::uniform(3, -1.0, 1.0));
  Z.applyAffine(Matrix{{0.5, 0.2, 0.1}, {0.0, 1.0, 0.3}, {0.2, 0.1, 0.9}},
                Vector{0.0, 0.1, -0.1});
  Z.applyRelu();
  Vector LoBefore(3), HiBefore(3);
  for (size_t I = 0; I < 3; ++I) {
    LoBefore[I] = Z.lowerBound(I);
    HiBefore[I] = Z.upperBound(I);
  }
  Z.compact(0.05);
  for (size_t I = 0; I < 3; ++I) {
    // Compaction may only relax bounds, never tighten unsoundly.
    EXPECT_LE(Z.lowerBound(I), LoBefore[I] + 1e-12);
    EXPECT_GE(Z.upperBound(I), HiBefore[I] - 1e-12);
  }
}

//===----------------------------------------------------------------------===//
// PowersetElement
//===----------------------------------------------------------------------===//

TEST(PowersetTest, SplitsOnCrossingNeuron) {
  auto Base = std::make_unique<ZonotopeElement>(Box(Vector{-1.0}, Vector{1.0}));
  PowersetElement P(std::move(Base), 2);
  P.applyRelu();
  EXPECT_EQ(P.numDisjuncts(), 2u);
  EXPECT_GE(P.lowerBound(0), -1e-9); // exact: ReLU output is nonnegative
  EXPECT_NEAR(P.upperBound(0), 1.0, 1e-9);
}

TEST(PowersetTest, RespectsBudget) {
  auto Base =
      std::make_unique<ZonotopeElement>(Box::uniform(4, -1.0, 1.0));
  PowersetElement P(std::move(Base), 4);
  P.applyRelu(); // 4 crossing neurons, budget 4 => at most 4 disjuncts
  EXPECT_LE(P.numDisjuncts(), 4u);
  EXPECT_GE(P.numDisjuncts(), 2u);
}

TEST(PowersetTest, BudgetOneIsPlainDomain) {
  auto Base = std::make_unique<ZonotopeElement>(Box(Vector{-1.0}, Vector{1.0}));
  PowersetElement P(std::move(Base), 1);
  P.applyRelu();
  EXPECT_EQ(P.numDisjuncts(), 1u);
}

TEST(PowersetTest, TighterThanPlainZonotope) {
  // On a crossing neuron, the case split removes the relaxation sag.
  ZonotopeElement Plain(Box(Vector{-1.0}, Vector{1.0}));
  Plain.applyRelu();
  auto Base = std::make_unique<ZonotopeElement>(Box(Vector{-1.0}, Vector{1.0}));
  PowersetElement Split(std::move(Base), 2);
  Split.applyRelu();
  EXPECT_GT(Split.lowerBound(0), Plain.lowerBound(0) - 1e-12);
  EXPECT_GE(Plain.upperBound(0), Split.upperBound(0) - 1e-12);
}

//===----------------------------------------------------------------------===//
// SymbolicIntervalElement (ReluVal's domain)
//===----------------------------------------------------------------------===//

TEST(SymbolicIntervalTest, ExactOnAffineNetworks) {
  SymbolicIntervalElement S(Box::uniform(2, -1.0, 1.0));
  S.applyAffine(Matrix{{1.0, 1.0}, {1.0, -1.0}}, Vector{0.0, 0.0});
  // Like zonotopes, symbolic intervals keep input correlations exactly
  // through affine layers: y0 - y1 = 2 x1 in [-2, 2].
  EXPECT_DOUBLE_EQ(S.lowerBoundDiff(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(S.lowerBound(0), -2.0);
  EXPECT_DOUBLE_EQ(S.upperBound(0), 2.0);
}

TEST(SymbolicIntervalTest, ReluStableKeepsSymbolic) {
  SymbolicIntervalElement S(Box(Vector{1.0, -3.0}, Vector{2.0, -1.0}));
  S.applyRelu();
  EXPECT_DOUBLE_EQ(S.lowerBound(0), 1.0);
  EXPECT_DOUBLE_EQ(S.upperBound(0), 2.0);
  EXPECT_DOUBLE_EQ(S.lowerBound(1), 0.0);
  EXPECT_DOUBLE_EQ(S.upperBound(1), 0.0);
}

TEST(SymbolicIntervalTest, ReluUnstableConcretizes) {
  SymbolicIntervalElement S(Box(Vector{-1.0}, Vector{1.0}));
  S.applyRelu();
  EXPECT_DOUBLE_EQ(S.lowerBound(0), 0.0);
  EXPECT_GE(S.upperBound(0), 1.0);
}

TEST(SymbolicIntervalTest, SmearScalesWithInfluence) {
  SymbolicIntervalElement S(Box::uniform(2, 0.0, 1.0));
  S.applyAffine(Matrix{{5.0, 0.1}}, Vector{0.0});
  EXPECT_GT(S.smear(0), S.smear(1));
}

//===----------------------------------------------------------------------===//
// Paper Example 2.2: analyzer verifies robustness on [-1, 1]
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, Example22VerifiedByZonotope) {
  Network Net = testing_nets::makeExample22Network();
  Box Region(Vector{-1.0}, Vector{1.0});
  AnalysisResult R = analyzeRobustness(
      Net, Region, 1, DomainSpec{BaseDomainKind::Zonotope, 1});
  EXPECT_TRUE(R.Verified) << "margin = " << R.Margin;
}

TEST(AnalyzerTest, Example22NotVerifiedOnWiderRegion) {
  // On [-1, 2] the property is false (N(2) classifies as 0), so no sound
  // analysis may verify it.
  Network Net = testing_nets::makeExample22Network();
  Box Region(Vector{-1.0}, Vector{2.0});
  for (int Disjuncts : {1, 2, 4}) {
    AnalysisResult R = analyzeRobustness(
        Net, Region, 1, DomainSpec{BaseDomainKind::Zonotope, Disjuncts});
    EXPECT_FALSE(R.Verified);
  }
}

//===----------------------------------------------------------------------===//
// Paper Example 2.3: domain precision ordering
//===----------------------------------------------------------------------===//

TEST(AnalyzerTest, Example23IntervalFailsPowersetSucceeds) {
  Network Net = testing_nets::makeExample23Network();
  Box Region = Box::uniform(2, 0.0, 1.0);

  AnalysisResult Interval = analyzeRobustness(
      Net, Region, 1, DomainSpec{BaseDomainKind::Interval, 1});
  EXPECT_FALSE(Interval.Verified);

  // The powerset of two zonotopes verifies the property, as in Figure 4.
  AnalysisResult Powerset = analyzeRobustness(
      Net, Region, 1, DomainSpec{BaseDomainKind::Zonotope, 2});
  EXPECT_TRUE(Powerset.Verified) << "margin = " << Powerset.Margin;

  // Precision ordering: powerset >= plain zonotope >= interval margins.
  // (Our plain-zonotope ReLU is the Taylor1+ minimal-area relaxation, which
  // is tighter than the join-based transformer Figure 4 depicts, so the
  // plain domain may also verify; the ordering below is the invariant.)
  AnalysisResult Zonotope = analyzeRobustness(
      Net, Region, 1, DomainSpec{BaseDomainKind::Zonotope, 1});
  EXPECT_GE(Zonotope.Margin, Interval.Margin);
  EXPECT_GE(Powerset.Margin, Zonotope.Margin - 1e-9);
}

TEST(AnalyzerTest, Example23PropertyActuallyHolds) {
  // Ground truth behind Figure 4: the concrete network classifies all of
  // [0,1]^2 as class B.
  Network Net = testing_nets::makeExample23Network();
  Rng R(41);
  Box Region = Box::uniform(2, 0.0, 1.0);
  for (int I = 0; I < 2000; ++I) {
    Vector X = Region.sample(R);
    EXPECT_GT(Net.objective(X, 1), 0.0);
  }
}

//===----------------------------------------------------------------------===//
// Randomized soundness: every domain overapproximates the true outputs
//===----------------------------------------------------------------------===//

class DomainSoundnessTest : public ::testing::TestWithParam<DomainSpec> {};

TEST_P(DomainSoundnessTest, OutputBoundsContainSampledOutputs) {
  DomainSpec Spec = GetParam();
  Rng NetRng(55);
  Rng SampleRng(56);
  for (int Trial = 0; Trial < 4; ++Trial) {
    Network Net = makeMlp(3, {6, 6}, 3, NetRng);
    Vector Center(3);
    for (size_t I = 0; I < 3; ++I)
      Center[I] = SampleRng.uniform(-0.5, 0.5);
    Box Region = Box::linfBall(Center, 0.3, -2.0, 2.0);

    auto Elem = makeElement(Region, Spec);
    propagate(Net, *Elem);

    for (int S = 0; S < 200; ++S) {
      Vector X = Region.sample(SampleRng);
      Vector Y = Net.evaluate(X);
      for (size_t O = 0; O < Y.size(); ++O) {
        EXPECT_GE(Y[O], Elem->lowerBound(O) - 1e-7)
            << toString(Spec) << " trial " << Trial << " output " << O;
        EXPECT_LE(Y[O], Elem->upperBound(O) + 1e-7)
            << toString(Spec) << " trial " << Trial << " output " << O;
      }
      for (size_t K = 0; K < Y.size(); ++K)
        for (size_t J = 0; J < Y.size(); ++J)
          if (J != K)
            EXPECT_GE(Y[K] - Y[J], Elem->lowerBoundDiff(K, J) - 1e-7)
                << toString(Spec);
    }
  }
}

TEST_P(DomainSoundnessTest, VerifiedImpliesNoSampledCounterexample) {
  DomainSpec Spec = GetParam();
  Rng NetRng(65);
  Rng SampleRng(66);
  int VerifiedCount = 0;
  for (int Trial = 0; Trial < 8; ++Trial) {
    Network Net = makeMlp(2, {5, 5}, 2, NetRng);
    Vector Center{SampleRng.uniform(-0.5, 0.5), SampleRng.uniform(-0.5, 0.5)};
    Box Region = Box::linfBall(Center, 0.1, -2.0, 2.0);
    size_t K = Net.classify(Center);
    AnalysisResult R = analyzeRobustness(Net, Region, K, Spec);
    if (!R.Verified)
      continue;
    ++VerifiedCount;
    for (int S = 0; S < 300; ++S) {
      Vector X = Region.sample(SampleRng);
      EXPECT_EQ(Net.classify(X), K) << toString(Spec) << " trial " << Trial;
    }
  }
  // The small regions above should mostly verify; the test is vacuous
  // otherwise, so require at least one success.
  EXPECT_GE(VerifiedCount, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, DomainSoundnessTest,
    ::testing::Values(DomainSpec{BaseDomainKind::Interval, 1},
                      DomainSpec{BaseDomainKind::Interval, 4},
                      DomainSpec{BaseDomainKind::Zonotope, 1},
                      DomainSpec{BaseDomainKind::Zonotope, 2},
                      DomainSpec{BaseDomainKind::Zonotope, 8},
                      DomainSpec{BaseDomainKind::SymbolicInterval, 1},
                      DomainSpec{BaseDomainKind::Polyhedra, 1}),
    [](const ::testing::TestParamInfo<DomainSpec> &Info) {
      std::string Name = toString(Info.param);
      for (char &C : Name)
        if (C == '^')
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Soundness on a convolutional network (affine lowering + pooling)
//===----------------------------------------------------------------------===//

TEST(AnalyzerConvTest, ConvNetworkBoundsAreSound) {
  Rng NetRng(71);
  Network Net = makeLeNet(TensorShape{1, 8, 8}, 3, NetRng);
  Rng SampleRng(72);
  Vector Center(Net.inputSize());
  for (size_t I = 0; I < Center.size(); ++I)
    Center[I] = SampleRng.uniform(0.2, 0.8);
  Box Region = Box::linfBall(Center, 0.02, 0.0, 1.0);

  for (DomainSpec Spec : {DomainSpec{BaseDomainKind::Interval, 1},
                          DomainSpec{BaseDomainKind::Zonotope, 1}}) {
    auto Elem = makeElement(Region, Spec);
    propagate(Net, *Elem);
    for (int S = 0; S < 50; ++S) {
      Vector X = Region.sample(SampleRng);
      Vector Y = Net.evaluate(X);
      for (size_t O = 0; O < Y.size(); ++O) {
        EXPECT_GE(Y[O], Elem->lowerBound(O) - 1e-7) << toString(Spec);
        EXPECT_LE(Y[O], Elem->upperBound(O) + 1e-7) << toString(Spec);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Precision relationships
//===----------------------------------------------------------------------===//

TEST(DomainPrecisionTest, ZonotopeBeatsIntervalOnDeepNets) {
  // On multi-layer networks the interval domain's decorrelation compounds;
  // the zonotope margin should (weakly) dominate on average.
  Rng NetRng(81);
  Rng RegionRng(82);
  int ZonotopeWins = 0, Trials = 10;
  for (int T = 0; T < Trials; ++T) {
    Network Net = makeMlp(3, {8, 8, 8}, 2, NetRng);
    Vector Center(3);
    for (size_t I = 0; I < 3; ++I)
      Center[I] = RegionRng.uniform(-0.3, 0.3);
    Box Region = Box::linfBall(Center, 0.1, -1.0, 1.0);
    size_t K = Net.classify(Center);
    double IntervalMargin =
        analyzeRobustness(Net, Region, K,
                          DomainSpec{BaseDomainKind::Interval, 1})
            .Margin;
    double ZonotopeMargin =
        analyzeRobustness(Net, Region, K,
                          DomainSpec{BaseDomainKind::Zonotope, 1})
            .Margin;
    if (ZonotopeMargin >= IntervalMargin)
      ++ZonotopeWins;
  }
  EXPECT_GE(ZonotopeWins, 8);
}

TEST(DomainPrecisionTest, MoreDisjunctsNeverHurtMargins) {
  Rng NetRng(91);
  Rng RegionRng(92);
  for (int T = 0; T < 6; ++T) {
    Network Net = makeMlp(2, {6}, 2, NetRng);
    Vector Center{RegionRng.uniform(-0.3, 0.3), RegionRng.uniform(-0.3, 0.3)};
    Box Region = Box::linfBall(Center, 0.25, -1.0, 1.0);
    size_t K = Net.classify(Center);
    double M1 = analyzeRobustness(Net, Region, K,
                                  DomainSpec{BaseDomainKind::Zonotope, 1})
                    .Margin;
    double M4 = analyzeRobustness(Net, Region, K,
                                  DomainSpec{BaseDomainKind::Zonotope, 4})
                    .Margin;
    EXPECT_GE(M4, M1 - 1e-9) << "trial " << T;
  }
}
