//===- LpEdgeTests.cpp - Simplex edge cases and deadline behaviour --------------===//

#include "lp/Simplex.h"

#include "support/Random.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace charon;

TEST(LpEdgeTest, ExpiredDeadlineAbortsCleanly) {
  Rng R(3);
  LpProblem Lp;
  int N = 20;
  for (int I = 0; I < N; ++I)
    Lp.addVariable(-1.0, 1.0);
  for (int C = 0; C < 30; ++C) {
    std::vector<std::pair<int, double>> Terms;
    for (int I = 0; I < N; ++I)
      Terms.emplace_back(I, R.gaussian());
    Lp.addLeqConstraint(std::move(Terms), R.uniform(0.5, 2.0));
  }
  Vector Obj(N);
  for (int I = 0; I < N; ++I)
    Obj[I] = R.gaussian();
  Deadline Expired(0.0);
  LpResult Res = Lp.maximize(Obj, &Expired);
  EXPECT_EQ(Res.Status, LpStatus::IterationLimit);
}

TEST(LpEdgeTest, GenerousDeadlineDoesNotChangeResult) {
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 4.0);
  int Y = Lp.addVariable(0.0, 4.0);
  Lp.addLeqConstraint({{X, 1.0}, {Y, 1.0}}, 5.0);
  Vector Obj{1.0, 1.0};
  Deadline Generous(60.0);
  LpResult WithDeadline = Lp.maximize(Obj, &Generous);
  LpResult Without = Lp.maximize(Obj);
  ASSERT_EQ(WithDeadline.Status, LpStatus::Optimal);
  ASSERT_EQ(Without.Status, LpStatus::Optimal);
  EXPECT_NEAR(WithDeadline.Value, Without.Value, 1e-9);
}

TEST(LpEdgeTest, EmptyObjectiveStillFindsFeasiblePoint) {
  LpProblem Lp;
  int X = Lp.addVariable(-1.0, 1.0);
  Lp.addLeqConstraint({{X, -1.0}}, -0.5); // x >= 0.5
  LpResult Res = Lp.maximize(Vector{0.0});
  ASSERT_EQ(Res.Status, LpStatus::Optimal);
  EXPECT_GE(Res.X[0], 0.5 - 1e-8);
  EXPECT_LE(Res.X[0], 1.0 + 1e-8);
}

TEST(LpEdgeTest, RedundantConstraintsHarmless) {
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 1.0);
  for (int I = 0; I < 10; ++I)
    Lp.addLeqConstraint({{X, 1.0}}, 0.75); // same row, ten times
  LpResult Res = Lp.maximize(Vector{1.0});
  ASSERT_EQ(Res.Status, LpStatus::Optimal);
  EXPECT_NEAR(Res.X[0], 0.75, 1e-8);
}

TEST(LpEdgeTest, ZeroCoefficientTermsIgnored) {
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 2.0);
  int Y = Lp.addVariable(0.0, 2.0);
  Lp.addLeqConstraint({{X, 1.0}, {Y, 0.0}}, 1.0);
  LpResult Res = Lp.maximize(Vector{1.0, 1.0});
  ASSERT_EQ(Res.Status, LpStatus::Optimal);
  EXPECT_NEAR(Res.Value, 3.0, 1e-8); // x = 1, y = 2
}

TEST(LpEdgeTest, DuplicateVariableTermsAccumulate) {
  // 0.5x + 0.5x <= 1 must behave as x <= 1.
  LpProblem Lp;
  int X = Lp.addVariable(0.0, 5.0);
  Lp.addLeqConstraint({{X, 0.5}, {X, 0.5}}, 1.0);
  LpResult Res = Lp.maximize(Vector{1.0});
  ASSERT_EQ(Res.Status, LpStatus::Optimal);
  EXPECT_NEAR(Res.X[0], 1.0, 1e-8);
}

TEST(LpEdgeTest, HighlyDegenerateCornerTerminates) {
  // Many constraints active at the optimum; Bland's rule must prevent
  // cycling.
  LpProblem Lp;
  int N = 8;
  for (int I = 0; I < N; ++I)
    Lp.addVariable(0.0, 1.0);
  // All pairwise sums bounded by 1: optimum pushes everything to the same
  // degenerate corner region.
  for (int I = 0; I < N; ++I)
    for (int J = I + 1; J < N; ++J)
      Lp.addLeqConstraint({{I, 1.0}, {J, 1.0}}, 1.0);
  Vector Obj(N, 1.0);
  LpResult Res = Lp.maximize(Obj);
  ASSERT_EQ(Res.Status, LpStatus::Optimal);
  // Optimum of sum(x) under pairwise caps of 1 is n/2 * 1 = 4 (each pair
  // shares the budget; x_i = 0.5 for all i is feasible and optimal).
  EXPECT_NEAR(Res.Value, 4.0, 1e-7);
}
