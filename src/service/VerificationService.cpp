//===- VerificationService.cpp - Multi-tenant verification front-end ----------===//

#include "service/VerificationService.h"

#include "cert/CertChecker.h"
#include "core/Digest.h"
#include "search/Checkpoint.h"
#include "support/Timer.h"

#include <cassert>

using namespace charon;

//===----------------------------------------------------------------------===//
// Job state
//===----------------------------------------------------------------------===//

namespace charon {
namespace detail {

struct JobState {
  JobRequest Request;
  int Priority = 0;
  uint64_t Sequence = 0; ///< FIFO tiebreak within a priority level

  std::atomic<bool> CancelFlag{false};
  Stopwatch SinceSubmit;

  mutable std::mutex Mutex;
  mutable std::condition_variable Finished;
  bool Done = false;
  JobOutcome Out;

  void finish(JobOutcome Outcome) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Out = std::move(Outcome);
      Done = true;
    }
    Finished.notify_all();
  }
};

} // namespace detail
} // namespace charon

//===----------------------------------------------------------------------===//
// JobHandle
//===----------------------------------------------------------------------===//

bool JobHandle::done() const {
  assert(State && "empty job handle");
  std::lock_guard<std::mutex> Lock(State->Mutex);
  return State->Done;
}

void JobHandle::wait() const {
  assert(State && "empty job handle");
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Finished.wait(Lock, [&] { return State->Done; });
}

JobOutcome JobHandle::outcome() const {
  wait();
  std::lock_guard<std::mutex> Lock(State->Mutex);
  return State->Out;
}

void JobHandle::cancel() {
  assert(State && "empty job handle");
  State->CancelFlag.store(true, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// VerificationService
//===----------------------------------------------------------------------===//

bool VerificationService::QueueOrder::operator()(
    const std::shared_ptr<detail::JobState> &A,
    const std::shared_ptr<detail::JobState> &B) const {
  // priority_queue pops the *largest* element: higher priority wins, then
  // lower sequence (earlier submission).
  if (A->Priority != B->Priority)
    return A->Priority < B->Priority;
  return A->Sequence > B->Sequence;
}

VerificationService::VerificationService(VerificationPolicy P, ServiceConfig C)
    : Policy(std::move(P)), Config(C), Cache(C.CacheCapacity),
      Pool(C.Workers) {}

VerificationService::~VerificationService() { shutdown(); }

JobHandle VerificationService::submit(JobRequest Request) {
  assert(Accepting.load() && "submit after shutdown");
  auto State = std::make_shared<detail::JobState>();
  State->Priority = Request.Priority;
  State->Request = std::move(Request);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    State->Sequence = NextSequence++;
    Pending.push(State);
  }
  // One pool task per job: each task pops whatever is the most urgent
  // pending job at the moment it runs, which is what gives priorities
  // effect over the FIFO ThreadPool underneath.
  Pool.submit([this] { runOne(); });
  return JobHandle(State);
}

void VerificationService::runOne() {
  std::shared_ptr<detail::JobState> Job;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Pending.empty())
      return; // every pending job was already claimed
    Job = Pending.top();
    Pending.pop();
  }
  execute(*Job);
}

void VerificationService::execute(detail::JobState &Job) {
  JobOutcome Out;
  Out.QueueSeconds = Job.SinceSubmit.seconds();

  if (Job.CancelFlag.load(std::memory_order_relaxed)) {
    Out.Cancelled = true;
    Job.finish(std::move(Out));
    return;
  }

  const JobRequest &Req = Job.Request;
  const Network &Net = Registry.network(Req.Net);

  CacheKey Key;
  Key.NetworkFingerprint = Registry.fingerprint(Req.Net);
  Key.PropertyDigest = digestProperty(Req.Prop);
  Key.ConfigDigest = digestVerifierConfig(Req.Config);

  // A cached Timeout that carries a checkpoint is not a final answer but a
  // partially explored search; with ResumeTimeouts the job continues it
  // instead of replaying (or restarting) the query.
  std::shared_ptr<const SearchCheckpoint> Resume;
  if (Config.EnableCache) {
    if (auto Hit = Cache.lookup(Key, Req.Prop.Region, Req.Prop.TargetClass)) {
      if (Config.ResumeTimeouts && Hit->Result == Outcome::Timeout &&
          Hit->Checkpoint) {
        Resume = Hit->Checkpoint;
      } else {
        Out.Result = std::move(*Hit);
        Out.CacheHit = true;
        Job.finish(std::move(Out));
        return;
      }
    }
  }

  // Cache miss (or resumable timeout). Before re-running the search, see
  // whether another config's entry left a proof certificate for the same
  // query: a re-checked proof answers this job for the cost of replaying
  // its leaves, with no trust extended across config digests.
  if (Config.EnableCache && Config.RecheckCertificates && !Resume) {
    auto Cand = Cache.lookupCertified(Key.NetworkFingerprint,
                                      Key.PropertyDigest, Key.ConfigDigest);
    // A Falsified entry must additionally meet *this* job's refutation
    // threshold (Eq. 4 is config-dependent; Verified is not).
    if (Cand && (Cand->Result == Outcome::Verified ||
                 (Cand->Result == Outcome::Falsified &&
                  Cand->ObjectiveAtCex <= Req.Config.Delta))) {
      Stopwatch CheckWatch;
      CertCheckReport Rep = checkCertificate(Net, Req.Prop, *Cand->Certificate);
      if (Rep.Accepted) {
        Cache.noteCertifiedHit();
        Cache.insert(Key, Req.Prop.Region, Req.Prop.TargetClass, *Cand);
        Out.Result = std::move(*Cand);
        Out.CacheHit = true;
        Out.CertifiedHit = true;
        Out.RunSeconds = CheckWatch.seconds();
        Job.finish(std::move(Out));
        return;
      }
    }
  }

  Stopwatch RunWatch;
  VerifierConfig VC = Req.Config;
  // Compose the job's cancel flag with any caller-supplied hook instead of
  // replacing it.
  VC.CancelRequested = [&Job, UserHook = std::move(VC.CancelRequested)] {
    return Job.CancelFlag.load(std::memory_order_relaxed) ||
           (UserHook && UserHook());
  };
  if (Config.Executor) {
    Out.Result = Config.Executor(Net, Req.Prop, VC, Resume.get());
  } else {
    Verifier V(Net, Policy, VC);
    Out.Result = V.verify(Req.Prop, Resume.get());
  }
  Out.Resumed = Resume != nullptr;
  Out.RunSeconds = RunWatch.seconds();

  if (Job.CancelFlag.load(std::memory_order_relaxed)) {
    // The cancel hook forced an early Timeout; report it as a cancel and
    // keep the cache clean of aborted runs.
    Out.Cancelled = true;
  } else if (Config.EnableCache &&
             (Config.CacheTimeouts ||
              Out.Result.Result != Outcome::Timeout)) {
    Cache.insert(Key, Req.Prop.Region, Req.Prop.TargetClass, Out.Result);
  }
  Job.finish(std::move(Out));
}

BatchReport VerificationService::runBatch(
    const std::vector<JobRequest> &Requests) {
  Stopwatch Watch;
  std::vector<JobHandle> Handles;
  Handles.reserve(Requests.size());
  for (const JobRequest &Req : Requests)
    Handles.push_back(submit(Req));

  BatchReport Report;
  Report.Outcomes.reserve(Handles.size());
  for (JobHandle &H : Handles) {
    const JobOutcome &Out = H.outcome();
    Report.Outcomes.push_back(Out);
    switch (Out.Result.Result) {
    case Outcome::Verified:
      ++Report.Verified;
      break;
    case Outcome::Falsified:
      ++Report.Falsified;
      break;
    case Outcome::Timeout:
      ++Report.Timeout;
      break;
    }
    if (Out.CacheHit)
      ++Report.CacheHits;
    Report.Aggregate += Out.Result.Stats;
  }
  Report.WallSeconds = Watch.seconds();
  return Report;
}

void VerificationService::shutdown() {
  Accepting.store(false);
  // Every submitted job has exactly one pool task; draining the pool
  // drains the queue (cancelled jobs finish immediately inside execute()).
  Pool.wait();
}
