//===- BoxPropertyTests.cpp - Parameterized Box invariants ----------------------===//

#include "linalg/Box.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace charon;

namespace {

class BoxSweepTest : public ::testing::TestWithParam<size_t> {};

Box randomBox(size_t Dim, Rng &R) {
  Vector Lo(Dim), Hi(Dim);
  for (size_t I = 0; I < Dim; ++I) {
    double A = R.uniform(-2.0, 2.0);
    double B = R.uniform(-2.0, 2.0);
    Lo[I] = std::min(A, B);
    Hi[I] = std::max(A, B);
  }
  return Box(std::move(Lo), std::move(Hi));
}

} // namespace

TEST_P(BoxSweepTest, SplitShrinksDiameterAtAnyCut) {
  // Assumption 1 of the paper must hold for every dimension and cut value,
  // including cuts outside the box (which are clamped inward).
  size_t Dim = GetParam();
  Rng R(Dim * 7 + 1);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Box B = randomBox(Dim, R);
    if (B.diameter() == 0.0)
      continue;
    size_t D = R.uniformInt(Dim);
    if (B.width(D) == 0.0)
      continue;
    double Cut = R.uniform(-3.0, 3.0);
    auto [L, H] = B.split(D, Cut);
    EXPECT_LT(L.diameter(), B.diameter());
    EXPECT_LT(H.diameter(), B.diameter());
    // Halves partition the box along D.
    EXPECT_DOUBLE_EQ(L.upper()[D], H.lower()[D]);
    EXPECT_DOUBLE_EQ(L.lower()[D], B.lower()[D]);
    EXPECT_DOUBLE_EQ(H.upper()[D], B.upper()[D]);
  }
}

TEST_P(BoxSweepTest, SplitPreservesSampledPoints) {
  size_t Dim = GetParam();
  Rng R(Dim * 11 + 3);
  Box B = randomBox(Dim, R);
  size_t D = B.longestDim();
  auto [L, H] = B.split(D, B.center()[D]);
  for (int S = 0; S < 200; ++S) {
    Vector X = B.sample(R);
    EXPECT_TRUE(L.contains(X, 1e-12) || H.contains(X, 1e-12));
  }
}

TEST_P(BoxSweepTest, ProjectionIsIdempotentAndInside) {
  size_t Dim = GetParam();
  Rng R(Dim * 13 + 5);
  Box B = randomBox(Dim, R);
  for (int S = 0; S < 100; ++S) {
    Vector X(Dim);
    for (size_t I = 0; I < Dim; ++I)
      X[I] = R.uniform(-5.0, 5.0);
    Vector P = B.project(X);
    EXPECT_TRUE(B.contains(P, 1e-12));
    EXPECT_TRUE(approxEqual(B.project(P), P, 0.0));
    // Projection moves no coordinate past the nearer face.
    for (size_t I = 0; I < Dim; ++I)
      if (B.contains(X, 0.0)) {
        EXPECT_DOUBLE_EQ(P[I], X[I]);
      }
  }
}

TEST_P(BoxSweepTest, DiameterBoundsPairwiseDistances) {
  size_t Dim = GetParam();
  Rng R(Dim * 17 + 7);
  Box B = randomBox(Dim, R);
  double Diam = B.diameter();
  for (int S = 0; S < 100; ++S)
    EXPECT_LE(distance2(B.sample(R), B.sample(R)), Diam + 1e-12);
}

TEST_P(BoxSweepTest, RepeatedBisectionConvergesGeometrically) {
  // The termination argument (Thm. 5.2) needs D(child) < lambda * D(parent)
  // uniformly; bisecting the longest dimension achieves lambda well below 1
  // after Dim consecutive splits.
  size_t Dim = GetParam();
  Rng R(Dim * 19 + 9);
  Box B = randomBox(Dim, R);
  double Initial = B.diameter();
  if (Initial == 0.0)
    return;
  for (size_t Round = 0; Round < 3 * Dim; ++Round) {
    size_t D = B.longestDim();
    auto [L, H] = B.split(D, B.center()[D]);
    B = R.uniform() < 0.5 ? L : H; // random descent path
  }
  EXPECT_LT(B.diameter(), 0.3 * Initial);
}

INSTANTIATE_TEST_SUITE_P(Dims, BoxSweepTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return "dim" + std::to_string(Info.param);
                         });
