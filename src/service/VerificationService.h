//===- VerificationService.h - Multi-tenant verification front-end -*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the single-property Verifier (Algorithm 1) into a service that
/// decides many properties against many networks: a priority job queue
/// executed on a ThreadPool, fronted by the deduplicating NetworkRegistry
/// and the LRU ResultCache. Each job runs the *sequential* verifier, so a
/// cache-miss job returns bit-identical results to a direct
/// Verifier::verify() call — parallelism comes from running independent
/// jobs concurrently (the Sec. 6 observation that whole benchmark suites
/// are embarrassingly parallel), never from changing a job's execution.
///
/// Jobs support priorities (higher first), per-job deadlines (via
/// VerifierConfig::TimeLimitSeconds), and cooperative cancellation wired
/// through VerifierConfig::CancelRequested. shutdown() stops accepting
/// work and drains everything already submitted.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_SERVICE_VERIFICATIONSERVICE_H
#define CHARON_SERVICE_VERIFICATIONSERVICE_H

#include "core/Policy.h"
#include "core/Verifier.h"
#include "service/NetworkRegistry.h"
#include "service/ResultCache.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

namespace charon {

/// One verification request: which network (by registry ID), which
/// property, how to verify it, and how urgent it is.
struct JobRequest {
  NetworkId Net = 0;
  RobustnessProperty Prop;
  VerifierConfig Config; ///< per-job; TimeLimitSeconds is the job deadline
  int Priority = 0;      ///< higher-priority jobs are scheduled first
};

/// What a finished job produced. Result.Certificate rides along both on
/// fresh runs (when the job's config set EmitCertificate) and on cache
/// hits whose stored result carried one.
struct JobOutcome {
  VerifyResult Result;   ///< bit-identical to Verifier::verify on a miss
  bool CacheHit = false; ///< answered from the ResultCache
  bool CertifiedHit = false; ///< answered by re-checking another config's
                             ///< certificate instead of trusting or rerunning
  bool Resumed = false;  ///< continued a cached Timeout's checkpoint
  bool Cancelled = false; ///< cancelled before or during execution
  double QueueSeconds = 0.0; ///< submit-to-start latency
  double RunSeconds = 0.0;   ///< execution time (0 for pre-run cancels)
};

namespace detail {
struct JobState;
} // namespace detail

/// Future-like handle to a submitted job.
class JobHandle {
public:
  JobHandle() = default;

  /// True once the job has finished (completed or cancelled).
  bool done() const;

  /// Blocks until the job finishes.
  void wait() const;

  /// Blocks, then returns the outcome. Returned by value so the result
  /// stays valid even when called on a temporary handle
  /// (`service.submit(req).outcome()`).
  JobOutcome outcome() const;

  /// Requests cancellation: a queued job is dropped when it reaches the
  /// front; a running job stops at its next deadline poll. Either way the
  /// outcome reports Cancelled and the verdict is Timeout (never a
  /// fabricated Verified/Falsified).
  void cancel();

private:
  friend class VerificationService;
  explicit JobHandle(std::shared_ptr<detail::JobState> S) : State(std::move(S)) {}
  std::shared_ptr<detail::JobState> State;
};

/// Aggregate report for a batch of jobs.
struct BatchReport {
  std::vector<JobOutcome> Outcomes; ///< one per request, in request order
  VerifyStats Aggregate;            ///< summed stats of executed jobs
  int Verified = 0;
  int Falsified = 0;
  int Timeout = 0;
  int CacheHits = 0;
  double WallSeconds = 0.0;
  double jobsPerSecond() const {
    return WallSeconds > 0.0 ? Outcomes.size() / WallSeconds : 0.0;
  }
};

/// Service configuration.
struct ServiceConfig {
  unsigned Workers = 0;       ///< thread-pool size (0 = hardware concurrency)
  size_t CacheCapacity = 4096; ///< ResultCache entries
  bool EnableCache = true;     ///< disable to force every job to execute
  /// Cache Timeout results too. Safe because the cache key includes the
  /// time budget (same query + same budget replays the same timeout);
  /// disable to retry timed-out queries on every submission.
  bool CacheTimeouts = true;
  /// When a job's query hits a cached Timeout that carries a search
  /// checkpoint, continue the interrupted search from that checkpoint
  /// (spending the job's full budget on fresh frontier work) instead of
  /// replaying the stale Timeout. Each resubmission therefore makes
  /// monotone progress toward a verdict; the outcome reports Resumed.
  bool ResumeTimeouts = true;
  /// When a job misses the cache but an entry for the same network and
  /// property exists under a *different* config digest with an attached
  /// ProofCertificate, re-check the certificate instead of re-running the
  /// search. The entry is never trusted across configs — acceptance comes
  /// from the checker's replay (and, for Falsified, the witness meeting
  /// this job's delta) — so the answer stays sound even across verifier
  /// versions. The outcome reports CertifiedHit.
  bool RecheckCertificates = true;
  /// Optional replacement for the in-process Verifier: when set, cache-miss
  /// jobs call this instead of Verifier::verify. The callable must honor
  /// the same contract (bit-identical verdict/counterexample/objective,
  /// cooperative cancellation via the config's CancelRequested, resumable
  /// Timeout checkpoints) — the fleet coordinator (src/fleet/) satisfies
  /// it, which is how `charon_serve --fleet-workers=N` dispatches whole
  /// jobs and their subtree shards to worker processes. Cache lookups,
  /// certificate re-checks, and cache fills stay in this service either
  /// way.
  std::function<VerifyResult(const Network &, const RobustnessProperty &,
                             const VerifierConfig &, const SearchCheckpoint *)>
      Executor;
};

/// Multi-tenant verification service over one shared policy.
class VerificationService {
public:
  explicit VerificationService(VerificationPolicy Policy,
                               ServiceConfig Config = ServiceConfig());
  ~VerificationService();

  VerificationService(const VerificationService &) = delete;
  VerificationService &operator=(const VerificationService &) = delete;

  /// The network store; register networks here before submitting jobs.
  NetworkRegistry &registry() { return Registry; }

  /// The result cache (for stats inspection and tests).
  ResultCache &cache() { return Cache; }

  /// Enqueues \p Request. Returns a handle whose outcome becomes available
  /// once a worker finishes the job. Must not be called after shutdown().
  JobHandle submit(JobRequest Request);

  /// Submits every request, waits for all of them, and aggregates. Safe to
  /// interleave with other submit() traffic.
  BatchReport runBatch(const std::vector<JobRequest> &Requests);

  /// Stops accepting new jobs and blocks until every already-submitted job
  /// has drained (cancelled jobs drain immediately). Idempotent; also run
  /// by the destructor.
  void shutdown();

  /// Worker count actually in use.
  unsigned workers() const { return Pool.size(); }

private:
  /// Pops and executes the best pending job (called on a pool thread).
  void runOne();

  /// Executes \p Job: cache lookup, verify, cache fill, notify.
  void execute(detail::JobState &Job);

  VerificationPolicy Policy;
  ServiceConfig Config;
  NetworkRegistry Registry;
  ResultCache Cache;
  ThreadPool Pool;

  std::mutex QueueMutex;
  /// Max-heap on (Priority, FIFO within a priority level).
  struct QueueOrder {
    bool operator()(const std::shared_ptr<detail::JobState> &A,
                    const std::shared_ptr<detail::JobState> &B) const;
  };
  std::priority_queue<std::shared_ptr<detail::JobState>,
                      std::vector<std::shared_ptr<detail::JobState>>,
                      QueueOrder>
      Pending;
  uint64_t NextSequence = 0;
  std::atomic<bool> Accepting{true};
};

} // namespace charon

#endif // CHARON_SERVICE_VERIFICATIONSERVICE_H
