file(REMOVE_RECURSE
  "CMakeFiles/reluplex_mode_tests.dir/baselines/ReluplexModeTests.cpp.o"
  "CMakeFiles/reluplex_mode_tests.dir/baselines/ReluplexModeTests.cpp.o.d"
  "reluplex_mode_tests"
  "reluplex_mode_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reluplex_mode_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
