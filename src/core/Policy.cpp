//===- Policy.cpp - Verification policies (domain + partition) ----------------===//

#include "core/Policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace charon;

namespace {

/// Clips to [0, 1] (the paper's selection functions clip to a fixed range
/// before discretizing).
double clip01(double X) { return std::min(std::max(X, 0.0), 1.0); }

/// Squashes an unbounded policy activation into [0, 1] smoothly so that
/// Bayesian optimization sees gradients of behaviour across theta space.
double squash(double X) { return clip01(0.5 + 0.5 * std::tanh(X)); }

} // namespace

VerificationPolicy::VerificationPolicy()
    : Theta(PolicyNumOutputs, PolicyNumFeatures) {
  // Hand-tuned defaults (see header). Feature order:
  //   0: |center(I) - x*|, 1: F(x*), 2: |grad F(x*)|, 3: mean width, 4: bias.
  // Output 0: base domain (squash < 0.5 => Interval, else Zonotope).
  Theta(0, 4) = 0.6; // lean zonotope
  // Output 1: disjunct budget (squash over {1, 2, 4, 8}).
  Theta(1, 1) = -0.5; // small margins => more disjuncts
  Theta(1, 4) = -0.4; // default to few disjuncts
  // Outputs 2/3: dimension scores (longest vs most influential).
  Theta(2, 4) = 1.0; // default to the longest dimension
  Theta(3, 2) = 0.5; // strong gradients favour the influence dimension
  // Output 4: cut offset ratio (0 => bisect, 1 => cut through x*).
  Theta(4, 4) = -1.0; // default to bisection
}

VerificationPolicy::VerificationPolicy(Matrix Parameters)
    : Theta(std::move(Parameters)) {
  assert(Theta.rows() == PolicyNumOutputs &&
         Theta.cols() == PolicyNumFeatures && "policy parameter shape");
}

Vector VerificationPolicy::flatten() const {
  Vector Flat(numParameters());
  size_t Idx = 0;
  for (size_t R = 0; R < PolicyNumOutputs; ++R)
    for (size_t C = 0; C < PolicyNumFeatures; ++C)
      Flat[Idx++] = Theta(R, C);
  return Flat;
}

VerificationPolicy VerificationPolicy::fromFlat(const Vector &Flat) {
  assert(Flat.size() == numParameters() && "flattened parameter size");
  Matrix Theta(PolicyNumOutputs, PolicyNumFeatures);
  size_t Idx = 0;
  for (size_t R = 0; R < PolicyNumOutputs; ++R)
    for (size_t C = 0; C < PolicyNumFeatures; ++C)
      Theta(R, C) = Flat[Idx++];
  return VerificationPolicy(std::move(Theta));
}

Vector VerificationPolicy::featurize(const Network &Net,
                                     const RobustnessProperty &Prop,
                                     const Vector &XStar, double FStar) {
  const Box &I = Prop.Region;
  Vector Features(PolicyNumFeatures);
  // Features are normalized to be commensurable across input
  // dimensionalities so a policy trained on the 5-d ACAS problems
  // transfers to 100-d image networks (the paper's deployment story).
  double Diameter = I.diameter();
  Features[0] =
      Diameter > 0.0 ? distance2(I.center(), XStar) / Diameter : 0.0;
  Features[1] = FStar;
  Features[2] = norm2(Net.objectiveGradient(XStar, Prop.TargetClass)) /
                std::sqrt(static_cast<double>(I.dim()));
  double MeanWidth = 0.0;
  for (size_t D = 0, E = I.dim(); D < E; ++D)
    MeanWidth += I.width(D);
  Features[3] = MeanWidth / static_cast<double>(I.dim());
  Features[4] = 1.0; // bias
  return Features;
}

DomainSpec VerificationPolicy::chooseDomain(const Network &Net,
                                            const RobustnessProperty &Prop,
                                            const Vector &XStar,
                                            double FStar) const {
  Vector Rho = featurize(Net, Prop, XStar, FStar);
  Vector Out = matVec(Theta, Rho);

  DomainSpec Spec;
  Spec.Base = squash(Out[0]) < 0.5 ? BaseDomainKind::Interval
                                   : BaseDomainKind::Zonotope;
  // Discretize the second output over the disjunct menu {1, 2, 4, 8}.
  static constexpr int Menu[4] = {1, 2, 4, 8};
  int Idx = std::min(3, static_cast<int>(squash(Out[1]) * 4.0));
  Spec.Disjuncts = Menu[Idx];
  return Spec;
}

SplitChoice VerificationPolicy::choosePartition(const Network &Net,
                                                const RobustnessProperty &Prop,
                                                const Vector &XStar,
                                                double FStar) const {
  const Box &I = Prop.Region;
  Vector Rho = featurize(Net, Prop, XStar, FStar);
  Vector Out = matVec(Theta, Rho);

  // Candidate 1: the longest dimension.
  size_t LongestDim = I.longestDim();

  // Candidate 2: the dimension with the largest influence on N(x)_K —
  // gradient of the target-class score at x*, weighted by the width the
  // split could remove (ReluVal's smear, Sec. 6).
  Vector Seed(Net.outputSize());
  Seed[Prop.TargetClass] = 1.0;
  Vector Grad = Net.inputGradient(XStar, Seed);
  size_t InfluenceDim = LongestDim;
  double BestInfluence = -1.0;
  for (size_t D = 0, E = I.dim(); D < E; ++D) {
    double Influence = std::fabs(Grad[D]) * I.width(D);
    if (Influence > BestInfluence) {
      BestInfluence = Influence;
      InfluenceDim = D;
    }
  }

  SplitChoice Choice;
  Choice.Dim = Out[2] >= Out[3] ? LongestDim : InfluenceDim;
  // Degenerate guard: never split a zero-width dimension when a wider one
  // exists.
  if (I.width(Choice.Dim) == 0.0)
    Choice.Dim = LongestDim;

  // Offset: ratio in [0, 1] of the way from the region center to x* along
  // the chosen dimension (0 = bisect, 1 = cut through x*). Box::split
  // nudges boundary cuts inward, satisfying Assumption 1.
  double Ratio = clip01(squash(Out[4]));
  double Center = 0.5 * (I.lower()[Choice.Dim] + I.upper()[Choice.Dim]);
  Choice.Cut = Center + Ratio * (XStar[Choice.Dim] - Center);
  return Choice;
}
