//===- Frontier.h - Schedulable open-node frontier ---------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frontier schedules the proof tree's open nodes with a pluggable
/// order. Scheduling is pure heuristics: the engine's verdict-selection
/// rule (DFS-earliest falsification, see SearchEngine.h) makes the final
/// verdict and counterexample independent of the pop order, so swapping
/// orders trades wall-clock, never answers.
///
///  - Lifo reproduces the classic depth-first refinement loop: the most
///    recently produced child pops first, keeping memory low and matching
///    the sequential driver the repo always had.
///  - BestFirst pops the node with the smallest priority — the parent's
///    PGD objective — so regions that came closest to a refutation are
///    attacked first, which finds counterexamples sooner on falsifiable
///    properties. Ties break toward the DFS-earliest node, which keeps the
///    order deterministic and stable across checkpoint/resume.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_SEARCH_FRONTIER_H
#define CHARON_SEARCH_FRONTIER_H

#include "search/ProofTree.h"

#include <cstddef>
#include <vector>

namespace charon {

/// Frontier scheduling orders.
enum class FrontierOrder : uint8_t {
  Lifo,     ///< depth-first: last pushed pops first (the default)
  BestFirst ///< minimum PGD objective first (near-refutations attacked first)
};

/// Printable name of a frontier order ("lifo" / "best-first").
const char *toString(FrontierOrder O);

/// Scheduler over open node ids. Not thread-safe; the engine guards it
/// with the search-state mutex.
class Frontier {
public:
  /// Creates a frontier popping in \p Order; \p Tree is consulted for
  /// priorities and DFS tie-breaks and must outlive the frontier.
  Frontier(FrontierOrder Order, const ProofTree *Tree);

  /// Schedules \p Id. Under Lifo the last push pops first, so callers push
  /// split halves upper-then-lower to expand the lower half first.
  void push(NodeId Id);

  /// Pops the next node to expand. Requires !empty().
  NodeId pop();

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  FrontierOrder order() const { return Order; }

private:
  /// True when popping \p A before \p B would be wrong under BestFirst.
  bool worse(NodeId A, NodeId B) const;

  FrontierOrder Order;
  const ProofTree *Tree;
  /// Lifo: a plain stack. BestFirst: a binary min-heap on (priority, DFS).
  std::vector<NodeId> Entries;
};

} // namespace charon

#endif // CHARON_SEARCH_FRONTIER_H
