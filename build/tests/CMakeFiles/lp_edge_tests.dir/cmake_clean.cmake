file(REMOVE_RECURSE
  "CMakeFiles/lp_edge_tests.dir/lp/LpEdgeTests.cpp.o"
  "CMakeFiles/lp_edge_tests.dir/lp/LpEdgeTests.cpp.o.d"
  "lp_edge_tests"
  "lp_edge_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_edge_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
