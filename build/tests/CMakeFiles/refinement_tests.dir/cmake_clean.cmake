file(REMOVE_RECURSE
  "CMakeFiles/refinement_tests.dir/core/RefinementTests.cpp.o"
  "CMakeFiles/refinement_tests.dir/core/RefinementTests.cpp.o.d"
  "refinement_tests"
  "refinement_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
