//===- ResultCacheEdgeTests.cpp - Subsumption edge cases ----------------------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// The subsumption rule (a cached Verified on I answers any I' subseteq I)
// is only sound for Verified verdicts and only for true containment. These
// tests pin down the boundary behavior: regions sharing faces, degenerate
// zero-width boxes, and the verdicts that must never subsume.
//
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include <gtest/gtest.h>

using namespace charon;

namespace {

CacheKey key(uint64_t Net, uint64_t Prop, uint64_t Config) {
  CacheKey K;
  K.NetworkFingerprint = Net;
  K.PropertyDigest = Prop;
  K.ConfigDigest = Config;
  return K;
}

VerifyResult verdict(Outcome O) {
  VerifyResult R;
  R.Result = O;
  if (O == Outcome::Falsified) {
    R.Counterexample = Vector{0.5, 0.5};
    R.ObjectiveAtCex = -0.25;
  }
  return R;
}

TEST(ResultCacheEdgeTest, ExactBoundarySubregionIsSubsumed) {
  ResultCache Cache(8);
  Box Outer(Vector{0.0, 0.0}, Vector{1.0, 1.0});
  Cache.insert(key(1, 10, 100), Outer, 0, verdict(Outcome::Verified));

  // Shares the lower-left corner and two full faces with the cached region:
  // containment is inclusive, so this must hit.
  Box SharedFaces(Vector{0.0, 0.0}, Vector{0.5, 1.0});
  auto Hit = Cache.lookup(key(1, 11, 100), SharedFaces, 0);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Result, Outcome::Verified);

  // The cached region itself, under a different property digest (e.g. a
  // renamed property): still contained, still Verified.
  auto Same = Cache.lookup(key(1, 12, 100), Outer, 0);
  ASSERT_TRUE(Same.has_value());
  EXPECT_EQ(Same->Result, Outcome::Verified);

  // Sticking out by any amount on any face must miss.
  Box Outside(Vector{0.0, 0.0}, Vector{1.0 + 1e-12, 1.0});
  EXPECT_FALSE(Cache.lookup(key(1, 13, 100), Outside, 0).has_value());

  EXPECT_EQ(Cache.stats().SubsumptionHits, 2);
  EXPECT_EQ(Cache.stats().Misses, 1);
}

TEST(ResultCacheEdgeTest, ZeroWidthBoxesSubsumeAndAreSubsumed) {
  ResultCache Cache(8);
  Box Outer(Vector{0.0, 0.0}, Vector{1.0, 1.0});
  Cache.insert(key(1, 10, 100), Outer, 0, verdict(Outcome::Verified));

  // A single point on the cached region's boundary is a valid (degenerate)
  // subregion.
  Box CornerPoint(Vector{1.0, 1.0}, Vector{1.0, 1.0});
  auto Hit = Cache.lookup(key(1, 20, 100), CornerPoint, 0);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Result, Outcome::Verified);

  // A cached zero-width box subsumes exactly itself and nothing else.
  ResultCache PointCache(8);
  Box Point(Vector{0.25, 0.75}, Vector{0.25, 0.75});
  PointCache.insert(key(2, 30, 100), Point, 1, verdict(Outcome::Verified));
  auto Self = PointCache.lookup(key(2, 31, 100), Point, 1);
  ASSERT_TRUE(Self.has_value());
  EXPECT_EQ(Self->Result, Outcome::Verified);
  Box Nearby(Vector{0.25, 0.75}, Vector{0.25 + 1e-9, 0.75});
  EXPECT_FALSE(PointCache.lookup(key(2, 32, 100), Nearby, 1).has_value());
}

TEST(ResultCacheEdgeTest, FalsifiedNeverSubsumes) {
  ResultCache Cache(8);
  Box Outer(Vector{0.0, 0.0}, Vector{1.0, 1.0});
  Cache.insert(key(1, 10, 100), Outer, 0, verdict(Outcome::Falsified));

  // A counterexample for the outer region says nothing about an arbitrary
  // subregion (the cex may lie outside it), so subsumption must not fire —
  // not even for the subregion that contains the cached counterexample.
  Box AroundCex(Vector{0.4, 0.4}, Vector{0.6, 0.6});
  EXPECT_FALSE(Cache.lookup(key(1, 11, 100), AroundCex, 0).has_value());

  // The exact key still replays the stored verdict.
  auto Exact = Cache.lookup(key(1, 10, 100), Outer, 0);
  ASSERT_TRUE(Exact.has_value());
  EXPECT_EQ(Exact->Result, Outcome::Falsified);
  EXPECT_EQ(Cache.stats().ExactHits, 1);
  EXPECT_EQ(Cache.stats().SubsumptionHits, 0);
}

TEST(ResultCacheEdgeTest, TimeoutNeverSubsumes) {
  ResultCache Cache(8);
  Box Outer(Vector{0.0, 0.0}, Vector{1.0, 1.0});
  Cache.insert(key(1, 10, 100), Outer, 0, verdict(Outcome::Timeout));

  Box Inner(Vector{0.25, 0.25}, Vector{0.75, 0.75});
  EXPECT_FALSE(Cache.lookup(key(1, 11, 100), Inner, 0).has_value());

  // Exact replay is allowed: the config digest includes the budget, so the
  // same query would time out again.
  EXPECT_TRUE(Cache.lookup(key(1, 10, 100), Outer, 0).has_value());
}

TEST(ResultCacheEdgeTest, SubsumptionRequiresMatchingClassConfigAndNetwork) {
  ResultCache Cache(8);
  Box Outer(Vector{0.0, 0.0}, Vector{1.0, 1.0});
  Cache.insert(key(1, 10, 100), Outer, /*TargetClass=*/0,
               verdict(Outcome::Verified));

  Box Inner(Vector{0.25, 0.25}, Vector{0.75, 0.75});
  // Contained region, but the query differs in one key component each time.
  EXPECT_FALSE(Cache.lookup(key(1, 11, 100), Inner, 1).has_value());  // class
  EXPECT_FALSE(Cache.lookup(key(1, 11, 999), Inner, 0).has_value());  // config
  EXPECT_FALSE(Cache.lookup(key(2, 11, 100), Inner, 0).has_value());  // network
  EXPECT_TRUE(Cache.lookup(key(1, 11, 100), Inner, 0).has_value());
}

TEST(ResultCacheEdgeTest, OverlapWithoutContainmentMisses) {
  ResultCache Cache(8);
  Cache.insert(key(1, 10, 100), Box(Vector{0.0, 0.0}, Vector{0.6, 0.6}), 0,
               verdict(Outcome::Verified));
  // Overlaps the cached region but is not contained in it.
  Box Straddling(Vector{0.5, 0.5}, Vector{0.7, 0.7});
  EXPECT_FALSE(Cache.lookup(key(1, 11, 100), Straddling, 0).has_value());
}

} // namespace
