//===- bench_micro_domains.cpp - Microbenchmarks of the core kernels -----------===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
// google-benchmark microbenchmarks of the kernels every experiment rests
// on: the abstract transformers of each domain (the cost model behind the
// precision/scalability trade-off the domain policy navigates), PGD
// counterexample search, symbolic-interval propagation, and LP solving.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "abstract/Analyzer.h"
#include "lp/Simplex.h"
#include "nn/Builder.h"
#include "opt/Pgd.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

using namespace charon;

namespace {

/// Shared fixture state: a random MLP and an input region per width.
struct NetFixture {
  Network Net;
  Box Region;

  NetFixture(size_t Width, int Layers) {
    Rng R(17);
    Net = makeMlp(Width, std::vector<size_t>(Layers, Width), 10, R);
    Vector Center(Width);
    for (size_t I = 0; I < Width; ++I)
      Center[I] = R.uniform(0.3, 0.7);
    Region = Box::linfBall(Center, 0.05, 0.0, 1.0);
  }
};

void runDomain(benchmark::State &State, BaseDomainKind Base, int Disjuncts) {
  NetFixture F(static_cast<size_t>(State.range(0)), 3);
  DomainSpec Spec{Base, Disjuncts};
  for (auto _ : State) {
    AnalysisResult R = analyzeRobustness(F.Net, F.Region, 0, Spec);
    benchmark::DoNotOptimize(R.Margin);
  }
}

void BM_IntervalAnalysis(benchmark::State &State) {
  runDomain(State, BaseDomainKind::Interval, 1);
}
BENCHMARK(BM_IntervalAnalysis)->Arg(25)->Arg(50)->Arg(100);

void BM_ZonotopeAnalysis(benchmark::State &State) {
  runDomain(State, BaseDomainKind::Zonotope, 1);
}
BENCHMARK(BM_ZonotopeAnalysis)->Arg(25)->Arg(50)->Arg(100);

void BM_ZonotopePowerset4(benchmark::State &State) {
  runDomain(State, BaseDomainKind::Zonotope, 4);
}
BENCHMARK(BM_ZonotopePowerset4)->Arg(25)->Arg(50);

void BM_ZonotopePowerset64(benchmark::State &State) {
  runDomain(State, BaseDomainKind::Zonotope, 64);
}
BENCHMARK(BM_ZonotopePowerset64)->Arg(25);

void BM_SymbolicIntervalAnalysis(benchmark::State &State) {
  runDomain(State, BaseDomainKind::SymbolicInterval, 1);
}
BENCHMARK(BM_SymbolicIntervalAnalysis)->Arg(25)->Arg(50)->Arg(100);

void BM_PolyhedraAnalysis(benchmark::State &State) {
  runDomain(State, BaseDomainKind::Polyhedra, 1);
}
BENCHMARK(BM_PolyhedraAnalysis)->Arg(25)->Arg(50)->Arg(100);

void BM_PgdSearch(benchmark::State &State) {
  NetFixture F(static_cast<size_t>(State.range(0)), 3);
  Rng R(23);
  PgdConfig Config;
  for (auto _ : State) {
    PgdResult P = pgdMinimize(F.Net, F.Region, 0, Config, R);
    benchmark::DoNotOptimize(P.Objective);
  }
}
BENCHMARK(BM_PgdSearch)->Arg(25)->Arg(100);

void BM_ConcreteForward(benchmark::State &State) {
  NetFixture F(static_cast<size_t>(State.range(0)), 3);
  Vector X = F.Region.center();
  for (auto _ : State) {
    Vector Y = F.Net.evaluate(X);
    benchmark::DoNotOptimize(Y[0]);
  }
}
BENCHMARK(BM_ConcreteForward)->Arg(25)->Arg(100);

void BM_SimplexSolve(benchmark::State &State) {
  // Random dense LP of the given size (feasible by construction: rhs > 0).
  int N = static_cast<int>(State.range(0));
  Rng R(29);
  LpProblem Lp;
  for (int I = 0; I < N; ++I)
    Lp.addVariable(-1.0, 1.0);
  for (int C = 0; C < N; ++C) {
    std::vector<std::pair<int, double>> Terms;
    for (int I = 0; I < N; ++I)
      Terms.emplace_back(I, R.gaussian());
    Lp.addLeqConstraint(std::move(Terms), R.uniform(1.0, 3.0));
  }
  Vector Obj(N);
  for (int I = 0; I < N; ++I)
    Obj[I] = R.gaussian();
  for (auto _ : State) {
    LpResult Res = Lp.maximize(Obj);
    benchmark::DoNotOptimize(Res.Value);
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(30)->Arg(60);

} // namespace

// Custom main: always runs the tracked micro-domain case set and writes the
// machine-readable BENCH_micro_domains.json perf trajectory; google-benchmark
// registrations above additionally run when --gbench is passed (any other
// arguments are forwarded to the benchmark library).
//
//   --micro-filter=SUBSTR   only run cases whose name contains SUBSTR
//   --micro-out=PATH        output JSON path (default BENCH_micro_domains.json)
//   --micro-repeats=N       timed repetitions per case, fastest kept (def. 3)
//   --gbench                also run the google-benchmark microbenchmarks
int main(int argc, char **argv) {
  using namespace charon::bench;

  // Timed cases must not depend on which cases ran before them in this
  // process (see the Harness.h doc).
  stabilizeAllocator();

  std::string Filter;
  std::string OutPath = "BENCH_micro_domains.json";
  int Repeats = 3;
  bool RunGbench = false;

  std::vector<char *> Forwarded{argv[0]};
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--micro-filter=", 15) == 0)
      Filter = Arg + 15;
    else if (std::strncmp(Arg, "--micro-out=", 12) == 0)
      OutPath = Arg + 12;
    else if (std::strncmp(Arg, "--micro-repeats=", 16) == 0)
      Repeats = std::max(1, std::atoi(Arg + 16));
    else if (std::strcmp(Arg, "--gbench") == 0)
      RunGbench = true;
    else
      Forwarded.push_back(argv[I]);
  }

  std::vector<MicroDomainResult> Results;
  for (const MicroDomainCase &Case : defaultMicroDomainCases()) {
    if (!Filter.empty() && Case.Name.find(Filter) == std::string::npos)
      continue;
    MicroDomainResult R = runMicroDomainCase(Case, Repeats);
    std::printf("%-28s %8.4f s  gens=%-5zu margin=%.6g\n", R.Case.Name.c_str(),
                R.Seconds, R.Generators, R.Margin);
    Results.push_back(std::move(R));
  }
  if (Results.empty()) {
    std::fprintf(stderr, "no micro-domain case matches filter '%s'\n",
                 Filter.c_str());
    return 1;
  }
  if (!writeMicroDomainJsonFile(OutPath, Results)) {
    std::fprintf(stderr, "failed to write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu cases)\n", OutPath.c_str(), Results.size());

  if (RunGbench) {
    int FwdArgc = static_cast<int>(Forwarded.size());
    benchmark::Initialize(&FwdArgc, Forwarded.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
