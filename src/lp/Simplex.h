//===- Simplex.h - Dense two-phase simplex LP solver -------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense two-phase primal simplex solver for problems of the form
///
///   maximize c . x   subject to   A x <= b,   lo <= x <= hi
///
/// with finite variable bounds. This is the substrate of the Reluplex-style
/// complete baseline (Sec. 7.2): Reluplex itself is a simplex variant with
/// native ReLU splitting; our baseline reproduces that behaviour as LP-based
/// branch-and-bound over ReLU activation phases, so it needs exactly this
/// solver. Bland's rule is used near degeneracy to guarantee termination.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_LP_SIMPLEX_H
#define CHARON_LP_SIMPLEX_H

#include "linalg/Vector.h"
#include "support/Timer.h"

#include <utility>
#include <vector>

namespace charon {

/// Outcome of an LP solve.
enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// Solution of an LP: status, objective value, and the optimal point
/// (valid only when Status == Optimal).
struct LpResult {
  LpStatus Status = LpStatus::Infeasible;
  double Value = 0.0;
  Vector X;
};

/// A linear program: maximize Objective . x subject to row constraints
/// (sparse) of the form sum coef*x <= rhs plus per-variable bounds.
class LpProblem {
public:
  /// Adds a variable with finite bounds [Lo, Hi]; returns its index.
  int addVariable(double Lo, double Hi);

  /// Adds the constraint sum_{(v,c) in Terms} c * x_v <= Rhs.
  void addLeqConstraint(std::vector<std::pair<int, double>> Terms, double Rhs);

  /// Adds the constraint sum Terms = Rhs (internally two inequalities).
  void addEqConstraint(std::vector<std::pair<int, double>> Terms, double Rhs);

  size_t numVariables() const { return LoBound.size(); }
  size_t numConstraints() const { return Rows.size(); }

  /// Maximizes Objective . x. \p Objective must have numVariables entries.
  /// When \p Budget is non-null the solve is abandoned (IterationLimit)
  /// once the deadline expires, checked every few pivots.
  LpResult maximize(const Vector &Objective,
                    const Deadline *Budget = nullptr) const;

private:
  struct Row {
    std::vector<std::pair<int, double>> Terms;
    double Rhs;
  };

  std::vector<double> LoBound;
  std::vector<double> HiBound;
  std::vector<Row> Rows;
};

} // namespace charon

#endif // CHARON_LP_SIMPLEX_H
