//===- Activation.h - Element-wise activation layers ------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-class activations: scalar evaluation/derivative helpers shared by
/// concrete layers and abstract transformers, the sound linear relaxation
/// for smooth activations (the zonotope/symbolic-interval/polyhedra
/// transformers all derive from the same parallel-line relaxation), and the
/// ActivationLayer class covering ReLU, sigmoid, and tanh.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_NN_ACTIVATION_H
#define CHARON_NN_ACTIVATION_H

#include "nn/Layer.h"

namespace charon {

/// Printable lowercase name of an activation ("relu", "sigmoid", "tanh").
const char *toString(ActivationKind K);

/// Evaluates the activation \p K at \p X.
double activationEval(ActivationKind K, double X);

/// Derivative of the activation \p K at \p X (for ReLU, the subgradient with
/// the same x > 0 tie-break as the forward pass).
double activationDeriv(ActivationKind K, double X);

/// Sound scalar range: [\p Lo, \p Hi] contains { act(x) : x in [L, U] }.
/// All supported activations are nondecreasing, so the range is the image of
/// the endpoints, rounded outward to absorb libm error on the smooth kinds.
void activationRange(ActivationKind K, double L, double U, double &Lo,
                     double &Hi);

/// Sound linear relaxation of a smooth activation on [L, U]:
///
///   for all x in [L, U]:  |act(x) - (Lambda * x + Mu)| <= Beta
///
/// This is the minimal-area parallel-line relaxation (DeepZ-style): with
/// lambda = min(act'(L), act'(U)) the residual g(x) = act(x) - lambda * x is
/// nondecreasing on [L, U] (act' is unimodal with its maximum at 0, so
/// act' >= lambda throughout the interval), giving the exact envelope
/// act(x) in [lambda * x + g(L), lambda * x + g(U)]. Mu centers the band and
/// Beta = (g(U) - g(L)) / 2 is its half-width, inflated outward to cover
/// floating-point error in exp/tanh and in lambda itself. Lambda is always
/// in [0, 1]. Only valid for the smooth kinds (sigmoid, tanh) — ReLU keeps
/// its exact case-split transformers.
struct SmoothRelaxation {
  double Lambda;
  double Mu;
  double Beta;
};
SmoothRelaxation relaxSmoothActivation(ActivationKind K, double L, double U);

/// Element-wise activation layer: y_i = act(x_i). One class covers the whole
/// zoo; the ReLU batch path keeps its fused kernels.
class ActivationLayer : public Layer {
public:
  ActivationLayer(ActivationKind K, size_t N) : Kind(K), Size(N) {}

  LayerKind kind() const override;
  size_t inputSize() const override { return Size; }
  size_t outputSize() const override { return Size; }

  Vector forward(const Vector &Input) const override;
  Vector backward(const Vector &Input, const Vector &GradOut,
                  bool AccumulateParams) override;
  Matrix forwardBatch(const Matrix &X) const override;
  Matrix backwardBatch(const Matrix &X, const Matrix &GradOut) const override;

  std::optional<ActivationKind> activationKind() const override {
    return Kind;
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ActivationLayer>(Kind, Size);
  }

private:
  ActivationKind Kind;
  size_t Size;
};

/// Element-wise logistic sigmoid.
class SigmoidLayer : public ActivationLayer {
public:
  explicit SigmoidLayer(size_t N)
      : ActivationLayer(ActivationKind::Sigmoid, N) {}
};

/// Element-wise hyperbolic tangent.
class TanhLayer : public ActivationLayer {
public:
  explicit TanhLayer(size_t N) : ActivationLayer(ActivationKind::Tanh, N) {}
};

} // namespace charon

#endif // CHARON_NN_ACTIVATION_H
