
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/acas_policy_training.cpp" "examples/CMakeFiles/acas_policy_training.dir/acas_policy_training.cpp.o" "gcc" "examples/CMakeFiles/acas_policy_training.dir/acas_policy_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/charon_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/charon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/charon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/abstract/CMakeFiles/charon_abstract.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/charon_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/charon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/charon_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/charon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/charon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
