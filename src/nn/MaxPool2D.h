//===- MaxPool2D.h - 2-D max pooling layer ----------------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 2-D max pooling. The paper's convolutional network (LeNet architecture,
/// Sec. 7) interleaves max-pool layers with convolutions; the abstract
/// analyzer consumes the layer via \c poolSpec().
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_NN_MAXPOOL2D_H
#define CHARON_NN_MAXPOOL2D_H

#include "nn/Conv2D.h"
#include "nn/Layer.h"

namespace charon {

/// Non-overlapping (or strided) 2-D max pooling.
class MaxPool2DLayer : public Layer {
public:
  /// Pools \p In with windows of \p PoolH x \p PoolW and stride \p Stride.
  MaxPool2DLayer(TensorShape In, int PoolH, int PoolW, int Stride);

  LayerKind kind() const override { return LayerKind::MaxPool2D; }
  size_t inputSize() const override { return InShape.size(); }
  size_t outputSize() const override { return OutShape.size(); }

  Vector forward(const Vector &Input) const override;
  Vector backward(const Vector &Input, const Vector &GradOut,
                  bool AccumulateParams) override;
  Matrix forwardBatch(const Matrix &X) const override;
  Matrix backwardBatch(const Matrix &X, const Matrix &GradOut) const override;

  const PoolSpec *poolSpec() const override { return &Spec; }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2DLayer>(InShape, PH, PW, S);
  }

  const TensorShape &inputShape() const { return InShape; }
  const TensorShape &outputShape() const { return OutShape; }
  int poolHeight() const { return PH; }
  int poolWidth() const { return PW; }
  int stride() const { return S; }

private:
  TensorShape InShape;
  TensorShape OutShape;
  int PH, PW, S;
  PoolSpec Spec;
};

} // namespace charon

#endif // CHARON_NN_MAXPOOL2D_H
