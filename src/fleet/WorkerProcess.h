//===- WorkerProcess.h - Forked charon_worker child handle --------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One fork/exec'd charon_worker child and its line-oriented pipe channel:
/// blocking writes into the child's stdin, non-blocking buffered reads
/// from its stdout (poll on outFd(), then onReadable()/popLine()). EOF on
/// the read side is how the coordinator detects a dead worker — the
/// precondition for the requeue-outstanding-shards path, so no subtree is
/// ever lost to a crash. Callers must ignore SIGPIPE (the coordinator and
/// the worker main both install SIG_IGN); a write into a dead child then
/// fails with EPIPE instead of killing the process.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_FLEET_WORKERPROCESS_H
#define CHARON_FLEET_WORKERPROCESS_H

#include <string>
#include <sys/types.h>
#include <vector>

namespace charon {

class WorkerProcess {
public:
  WorkerProcess() = default;
  ~WorkerProcess();

  WorkerProcess(const WorkerProcess &) = delete;
  WorkerProcess &operator=(const WorkerProcess &) = delete;

  /// Spawns `Binary Args...` with stdin/stdout piped (stderr inherited, so
  /// worker diagnostics land on the coordinator's stderr). False with a
  /// reason when the pipes, fork, or a pre-exec step fail; an exec failure
  /// surfaces as an immediate EOF.
  bool spawn(const std::string &Binary, const std::vector<std::string> &Args,
             std::string *Error = nullptr);

  /// Writes one protocol line (appends '\n'). False once the child is gone.
  bool sendLine(const std::string &Line);

  /// Poll this fd for readability; -1 after EOF/kill.
  int outFd() const { return OutFd; }

  /// Drains whatever the pipe holds right now into the line buffer.
  /// Returns false on EOF (child exited or closed stdout).
  bool onReadable();

  /// Pops the next complete line, if any.
  bool popLine(std::string &Line);

  /// True while the channel is open (EOF not yet seen).
  bool channelOpen() const { return OutFd >= 0 && !SawEof; }

  pid_t pid() const { return Pid; }

  /// SIGKILL + reap. Idempotent.
  void kill();

  /// Polite shutdown: quit command, bounded wait, then kill().
  void shutdown(double GraceSeconds);

private:
  void closeFds();
  /// Blocks up to \p Seconds for the child to exit; reaps it on success.
  bool waitExit(double Seconds);

  pid_t Pid = -1;
  int InFd = -1;  ///< write end of the child's stdin
  int OutFd = -1; ///< read end of the child's stdout
  std::string Buf;
  bool SawEof = false;
};

} // namespace charon

#endif // CHARON_FLEET_WORKERPROCESS_H
