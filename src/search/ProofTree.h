//===- ProofTree.h - Materialized proof-search tree -------------*- C++ -*-===//
//
// Part of the Charon reproduction of "Optimization and Abstraction" (PLDI'19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit refinement tree behind Algorithm 1. Every subregion the
/// verifier touches becomes a materialized ProofNode: its box, its position
/// in the tree (parent id + which side of the parent's split), the witness
/// handed down by the parent's counterexample search, and — once the node
/// is expanded — the policy's domain choice, the analysis margin, and the
/// PGD objective.
///
/// Two structural services fall out of materializing the tree:
///
///  - Path-derived RNG seeds. A node's seed is a hash fold of the split
///    bits from the root, so the randomness a node sees depends only on
///    *where it sits in the tree*, never on when a scheduler happened to
///    run it. This is what makes serial and parallel searches (and
///    checkpoint-resumed ones) bit-identical.
///  - A total "DFS order" over nodes (the order the sequential LIFO driver
///    expands them: ancestors before descendants, lower split half before
///    upper). The engine uses it to pick a scheduling-independent
///    falsification when several nodes refute the property.
///
//===----------------------------------------------------------------------===//

#ifndef CHARON_SEARCH_PROOFTREE_H
#define CHARON_SEARCH_PROOFTREE_H

#include "abstract/Analyzer.h"
#include "linalg/Box.h"

#include <cstdint>
#include <string>
#include <vector>

namespace charon {

/// Index of a node inside its ProofTree.
using NodeId = uint32_t;

/// Sentinel for "no node" (root's parent, unset best-falsified, ...).
inline constexpr NodeId InvalidNodeId = static_cast<NodeId>(-1);

/// Lifecycle of a proof node.
enum class NodeStatus : uint8_t {
  Open,      ///< scheduled or in flight; not yet resolved
  Verified,  ///< abstract interpretation proved this subregion
  Falsified, ///< counterexample search refuted it (F(x*) <= delta)
  Split,     ///< neither; two children cover it
  Pruned     ///< skipped: a DFS-earlier falsification decided the run
};

/// Printable name of a node status.
const char *toString(NodeStatus S);

/// One node of the proof tree.
struct ProofNode {
  Box Region;
  NodeId Parent = InvalidNodeId;
  /// Which side of the parent's split this node covers: 0 = lower half,
  /// 1 = upper half. 0 for the root.
  uint8_t ChildBit = 0;
  uint32_t Depth = 0;
  NodeStatus Status = NodeStatus::Open;
  /// RNG seed for this node's counterexample search, folded along the path
  /// from the root (see ProofTree doc comment).
  uint64_t PathSeed = 0;
  /// Frontier priority: the parent's PGD objective (smaller = closer to a
  /// refutation = expanded earlier under best-first order). 0 at the root.
  double Priority = 0.0;
  /// Parent's best witness, projected into this region by the node's own
  /// search as a warm start. Cleared once the node resolves.
  Vector Warm;
  /// Path bits from the root for nodes restored from a checkpoint (their
  /// ancestors are not materialized). Empty for ordinary nodes.
  std::vector<uint8_t> PathPrefix;

  // Filled in when the node is expanded (observability + checkpoints +
  // certificates).
  DomainSpec Domain;          ///< pi_alpha's choice (valid iff DomainChosen)
  bool DomainChosen = false;
  double Margin = 0.0;        ///< analysis margin (valid iff MarginKnown)
  bool MarginKnown = false;
  double PgdObjective = 0.0;  ///< F(x*) of this node's search

  /// Split nodes: the hyperplane actually used (post-clamp cut), so a
  /// certificate can prove the children tile this region exactly.
  size_t SplitDim = 0;
  double SplitCut = 0.0;

  /// Falsified nodes: the concrete delta-counterexample and its objective.
  /// Kept per node (not just the run's DFS-earliest winner) so every
  /// falsified leaf in a certificate carries its own replayable witness.
  Vector Cex;
  double CexObjective = 0.0;
};

/// Materialized proof-search tree. Not thread-safe; the engine guards it
/// with the search-state mutex.
class ProofTree {
public:
  /// Creates an empty tree whose path seeds fold from \p Seed.
  explicit ProofTree(uint64_t Seed);

  /// Adds the root node covering \p Region.
  NodeId addRoot(Box Region);

  /// Adds the two children of \p Parent produced by splitting it, lower
  /// half first. Both inherit \p Warm as their warm-start witness and
  /// \p Priority (the parent's PGD objective) as their frontier priority.
  std::pair<NodeId, NodeId> addChildren(NodeId Parent, Box Lower, Box Upper,
                                        const Vector &Warm, double Priority);

  /// Adds a detached node at \p Path (bits from the root) — used when
  /// restoring a checkpoint, where interior ancestors are not materialized.
  NodeId addDetached(const std::vector<uint8_t> &Path, Box Region,
                     Vector Warm, double Priority);

  ProofNode &node(NodeId Id) { return Nodes[Id]; }
  const ProofNode &node(NodeId Id) const { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// Split bits from the root to \p Id (empty for the root itself).
  std::vector<uint8_t> pathOf(NodeId Id) const;

  /// Renders pathOf() as a string of '0'/'1' characters, "-" for the root.
  std::string pathString(NodeId Id) const;

  /// True when \p A is expanded strictly before \p B by the sequential
  /// LIFO driver: ancestors precede descendants, and at the first
  /// diverging split the lower half precedes the upper.
  bool dfsPrecedes(NodeId A, NodeId B) const;

  /// The seed fold: seed of a child on side \p Bit of a node with
  /// \p ParentSeed. Exposed so checkpoints can recompute seeds from paths.
  static uint64_t childSeed(uint64_t ParentSeed, uint8_t Bit);

  /// The root's seed for a tree built over \p Seed.
  static uint64_t rootSeed(uint64_t Seed);

private:
  uint64_t Seed;
  std::vector<ProofNode> Nodes;
};

} // namespace charon

#endif // CHARON_SEARCH_PROOFTREE_H
